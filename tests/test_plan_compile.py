"""Fused-plan lowering and the content-addressed plan cache.

The invariant under test everywhere: a fused plan (any kernel tier) is
**bitwise identical** to the interpreted ExecutionPlan it lowers, and a
plan hydrated from the disk cache is bitwise identical to a fresh compile
— so the cache and the codegen can never change an answer, only its cost.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.cas.codegen import (
    cc_available,
    compile_kernel,
    emit_fused_sweep_source,
    select_tier,
)
from repro.engine.compile import (
    STATS,
    CompilerConfig,
    compile_plan,
    compiler_config,
    configure,
)
from repro.engine.fused import FusedPlan
from repro.engine.plan import ExecutionPlan, aux_signature, plan_digest
from repro.engine.plancache import PlanCache, resolve_cache_root
from repro.kernels.grouped import GroupedOperator
from repro.kernels.termset import TermSet

CDIM, VDIM = 1, 1
NCX, NCV = 3, 4


def random_termset(rng, nout=5, nin=6, nterms=7):
    """A random mixed termset: uniform, velocity-weighted, scalar-scaled,
    and configuration-varying symbol groups (the shapes real generated
    kernels produce, with random sparsity)."""

    def triples(n):
        return [
            (int(rng.integers(nout)), int(rng.integers(nin)),
             float(rng.standard_normal()))
            for _ in range(n)
        ]

    entries = {
        (): triples(nterms),
        ("w0",): triples(nterms),
        ("w1", "s0"): triples(nterms),
        ("c0",): triples(nterms),
    }
    return TermSet(nout, nin, entries)


def random_aux(rng):
    return {
        "w0": rng.standard_normal((1, NCV)),
        "w1": rng.standard_normal((1, NCV)),
        "s0": float(rng.standard_normal()),
        "c0": rng.standard_normal((NCX, 1)),
    }


def apply_with(ts, aux, f_cm, mode, tier="auto", cache="off"):
    """One fresh GroupedOperator application under a scoped config."""
    with compiler_config(mode=mode, tier=tier, cache=cache):
        op = GroupedOperator(ts, CDIM, VDIM)
        out = np.zeros((NCX, ts.nout, NCV))
        op.apply(f_cm, aux, out)
    return out


@pytest.fixture(scope="module")
def case(rng):
    ts = random_termset(rng)
    aux = random_aux(rng)
    f_cm = rng.standard_normal((NCX, ts.nin, NCV))
    return ts, aux, f_cm


# --------------------------------------------------------------------- #
# lowering equivalence
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("tier", ["numpy", "cc", "auto"])
def test_fused_bitwise_matches_interpreted(case, tier):
    if tier == "cc" and cc_available() is None:
        pytest.skip("no C compiler")
    ts, aux, f_cm = case
    ref = apply_with(ts, aux, f_cm, "interpreted")
    got = apply_with(ts, aux, f_cm, "fused", tier=tier)
    assert np.array_equal(ref, got)


def test_fused_bitwise_on_many_random_termsets(rng):
    """Property check: fused == interpreted bitwise across random sparsity
    patterns, including degenerate ones (empty groups, repeated entries)."""
    for trial in range(10):
        ts = random_termset(rng, nout=int(rng.integers(2, 7)),
                            nin=int(rng.integers(2, 7)),
                            nterms=int(rng.integers(1, 9)))
        aux = random_aux(rng)
        f_cm = rng.standard_normal((NCX, ts.nin, NCV))
        ref = apply_with(ts, aux, f_cm, "interpreted")
        got = apply_with(ts, aux, f_cm, "fused")
        assert np.array_equal(ref, got), f"trial {trial} diverged"


def test_fused_accumulate_and_assign(case):
    ts, aux, f_cm = case
    with compiler_config(mode="fused", cache="off"):
        op = GroupedOperator(ts, CDIM, VDIM)
        base = np.ones((NCX, ts.nout, NCV))
        acc = base.copy()
        op.apply(f_cm, aux, acc, accumulate=True)
        fresh = np.zeros_like(base)
        op.apply(f_cm, aux, fresh, accumulate=False)
    # accumulate interleaves term adds with the base, so (acc - base) and
    # fresh differ in summation order — tight tolerance, not bitwise
    assert np.allclose(acc - base, fresh, rtol=1e-13, atol=1e-13)
    # accumulate into zeros IS bitwise assign
    zacc = np.zeros_like(base)
    op2 = GroupedOperator(ts, CDIM, VDIM)
    with compiler_config(mode="fused", cache="off"):
        op2.apply(f_cm, aux, zacc, accumulate=True)
    assert np.allclose(zacc, fresh, rtol=1e-13, atol=1e-13)


def test_fused_tracks_inplace_aux_mutation(case, rng):
    """Velocity factors and cfg coefficients mutated *in place* (same array
    objects — the identity fast path stays hot) must be re-read per apply."""
    ts, _, f_cm = case
    aux = random_aux(rng)
    with compiler_config(mode="fused", cache="off"):
        op = GroupedOperator(ts, CDIM, VDIM)
        out = np.zeros((NCX, ts.nout, NCV))
        op.apply(f_cm, aux, out)  # binds the plan to these aux objects
        for _ in range(3):
            aux["w0"] *= 1.5
            aux["c0"] += 0.25
            out.fill(0.0)
            op.apply(f_cm, aux, out)
            ref = apply_with(ts, aux, f_cm, "interpreted")
            assert np.array_equal(ref, out)


def test_emitted_sweep_source_executes_without_numba(case):
    """The numba-targeted source must also run under plain exec and agree
    with the interpreted plan on the uniform (unweighted) sweep."""
    ts, aux, f_cm = case
    plan = ExecutionPlan(ts, CDIM, VDIM, aux, (NCX, NCV))
    fused = FusedPlan(plan, tier="numpy")
    steps = list(fused._sparse)
    if not steps:
        pytest.skip("no sparse steps in this termset")
    src = emit_fused_sweep_source(
        "sweep", ts.nout, [bool(s.vel_names) for s in steps]
    )
    namespace: dict = {"np": np}
    exec(compile(src, "<sweep>", "exec"), namespace)
    assert callable(namespace["sweep"])


def test_unrolled_kernel_roundtrip(rng):
    """emit_kernel_source/compile_kernel (cell-major mode) reproduce the
    sparse TermSet application on random data."""
    ts = random_termset(rng, nout=4, nin=4, nterms=5)
    aux = random_aux(rng)
    f_cm = rng.standard_normal((NCX, ts.nin, NCV))
    kern = compile_kernel("k", ts, cdim=CDIM)
    out_k = np.zeros((NCX, ts.nout, NCV))
    kern(f_cm, aux, out_k)
    out_ref = np.zeros_like(out_k)
    ts.apply_cm(f_cm, aux, out_ref, CDIM)
    assert np.allclose(out_k, out_ref, rtol=1e-13, atol=1e-13)


@pytest.mark.skipif(cc_available() is None, reason="no C compiler")
def test_cc_tier_bitwise_matches_numpy_tier(case):
    ts, aux, f_cm = case
    a = apply_with(ts, aux, f_cm, "fused", tier="numpy")
    b = apply_with(ts, aux, f_cm, "fused", tier="cc")
    assert np.array_equal(a, b)


# --------------------------------------------------------------------- #
# configuration
# --------------------------------------------------------------------- #
def test_configure_rejects_unknown_mode():
    with pytest.raises(ValueError):
        configure(mode="bogus")


def test_select_tier_degrades(monkeypatch):
    monkeypatch.delenv("REPRO_KERNEL_TIER", raising=False)
    assert select_tier("numpy") == "numpy"
    assert select_tier("auto") in ("numba", "cc", "numpy")
    monkeypatch.setenv("REPRO_KERNEL_TIER", "numpy")
    assert select_tier("auto") == "numpy"


def test_resolve_cache_root():
    assert resolve_cache_root(None) is None
    assert resolve_cache_root("off") is None
    assert resolve_cache_root("") is None
    assert resolve_cache_root("/some/dir") == Path("/some/dir")


# --------------------------------------------------------------------- #
# the disk cache
# --------------------------------------------------------------------- #
def test_cache_hydration_is_bit_identical_and_compile_free(case, tmp_path):
    ts, aux, f_cm = case
    cache = str(tmp_path / "plans")
    before = STATS.snapshot()
    cold = apply_with(ts, aux, f_cm, "fused", cache=cache)
    d1 = STATS.delta(STATS.snapshot(), before)
    assert d1["compiled"] >= 1 and d1["cache_stores"] >= 1

    before = STATS.snapshot()
    warm = apply_with(ts, aux, f_cm, "fused", cache=cache)
    d2 = STATS.delta(STATS.snapshot(), before)
    assert d2["compiled"] == 0
    assert d2["hydrated"] >= 1 and d2["cache_hits"] >= 1
    assert np.array_equal(cold, warm)


def test_cache_corrupt_payload_falls_back_to_compile(case, tmp_path):
    ts, aux, f_cm = case
    cache_dir = tmp_path / "plans"
    cold = apply_with(ts, aux, f_cm, "fused", cache=str(cache_dir))
    entries = list(cache_dir.glob("plan-*.npz"))
    assert entries
    for path in entries:
        path.write_bytes(path.read_bytes()[: max(4, path.stat().st_size // 3)])
    before = STATS.snapshot()
    got = apply_with(ts, aux, f_cm, "fused", cache=str(cache_dir))
    delta = STATS.delta(STATS.snapshot(), before)
    assert delta["cache_misses"] >= 1 and delta["compiled"] >= 1
    assert np.array_equal(cold, got)
    # the recompile re-published good payloads: next load hydrates again
    before = STATS.snapshot()
    again = apply_with(ts, aux, f_cm, "fused", cache=str(cache_dir))
    assert STATS.delta(STATS.snapshot(), before)["compiled"] == 0
    assert np.array_equal(cold, again)


def test_cache_invalidated_by_aux_signature_change(case, tmp_path, rng):
    """The same termset with a re-classified symbol (velocity factor ->
    configuration field) must compile a distinct plan, not reuse the
    cached one."""
    ts, aux, f_cm = case
    cache = str(tmp_path / "plans")
    apply_with(ts, aux, f_cm, "fused", cache=cache)

    aux2 = dict(aux)
    aux2["w0"] = rng.standard_normal((NCX, 1))  # now configuration-varying
    names = sorted({n for sym in ts.entries_by_symbol() for n in sym})
    sig1 = aux_signature(names, aux, CDIM, VDIM)
    sig2 = aux_signature(names, aux2, CDIM, VDIM)
    assert sig1 != sig2
    assert plan_digest(ts, CDIM, VDIM, sig1, (NCX, NCV)) != plan_digest(
        ts, CDIM, VDIM, sig2, (NCX, NCV)
    )
    got = apply_with(ts, aux2, f_cm, "fused", cache=cache)
    ref = apply_with(ts, aux2, f_cm, "interpreted")
    assert np.array_equal(ref, got)


def test_cache_reuse_across_processes(tmp_path):
    """A child process warms the cache; this process hydrates the same
    digests without compiling and reproduces the child's output bitwise."""
    cache_dir = tmp_path / "plans"
    out_file = tmp_path / "child_out.npy"
    script = f"""
import numpy as np
from repro.engine.compile import STATS, compiler_config
from repro.kernels.grouped import GroupedOperator
from test_plan_compile import NCX, NCV, CDIM, VDIM, random_termset, random_aux

rng = np.random.default_rng(1234)
ts, aux = random_termset(rng), random_aux(rng)
f_cm = rng.standard_normal((NCX, ts.nin, NCV))
with compiler_config(mode="fused", cache={str(cache_dir)!r}):
    op = GroupedOperator(ts, CDIM, VDIM)
    out = np.zeros((NCX, ts.nout, NCV))
    op.apply(f_cm, aux, out)
assert STATS.compiled >= 1 and STATS.cache_stores >= 1
np.save({str(out_file)!r}, out)
"""
    root = Path(__file__).resolve().parent.parent
    env = dict(os.environ)
    env["PYTHONPATH"] = f"{root / 'src'}:{root / 'tests'}"
    proc = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True, text=True, env=env,
    )
    assert proc.returncode == 0, proc.stderr

    rng = np.random.default_rng(1234)
    ts, aux = random_termset(rng), random_aux(rng)
    f_cm = rng.standard_normal((NCX, ts.nin, NCV))
    before = STATS.snapshot()
    got = apply_with(ts, aux, f_cm, "fused", cache=str(cache_dir))
    delta = STATS.delta(STATS.snapshot(), before)
    assert delta["compiled"] == 0 and delta["hydrated"] >= 1
    assert np.array_equal(np.load(out_file), got)


def test_hydrated_plan_artifacts_roundtrip(case):
    """ExecutionPlan.to_artifacts/from_artifacts is the serialization the
    cache stores; the round trip must preserve every operator block."""
    ts, aux, f_cm = case
    plan = ExecutionPlan(ts, CDIM, VDIM, aux, (NCX, NCV))
    meta, arrays = plan.to_artifacts()
    clone = ExecutionPlan.from_artifacts(
        ts, CDIM, VDIM, aux, (NCX, NCV), meta, arrays
    )
    out_a = np.zeros((NCX, ts.nout, NCV))
    out_b = np.zeros_like(out_a)
    plan.apply(f_cm, aux, out_a)
    clone.apply(f_cm, aux, out_b)
    assert np.array_equal(out_a, out_b)


def test_compile_plan_counts_kernels(case, tmp_path):
    ts, aux, f_cm = case
    if select_tier("auto") == "numpy":
        pytest.skip("no compiled kernel tier available")
    before = STATS.snapshot()
    with compiler_config(mode="fused", cache=str(tmp_path / "plans")):
        compile_plan(ts, CDIM, VDIM, aux, (NCX, NCV))
    delta = STATS.delta(STATS.snapshot(), before)
    assert delta["kernels_built"] + delta["kernels_loaded"] >= 0
    assert delta["fused"] == 1 and delta["compile_seconds"] > 0


def test_default_config_is_fused_auto():
    cfg = CompilerConfig()
    assert cfg.mode == "fused" and cfg.tier == "auto" and cfg.cache is None
