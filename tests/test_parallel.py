"""Two-level decomposition: partitions, halo exchange, decomposed == serial,
memory accounting, and the scaling-model shapes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.grid import Grid, PhaseGrid
from repro.parallel import (
    ClusterModel,
    ConfDecomposition,
    DecomposedVlasovRunner,
    ProblemSpec,
    SimulatedComm,
    block_ranges,
    factor_ranks,
    memory_report,
    strong_scaling_series,
    weak_scaling_series,
)
from repro.vlasov import VlasovModalSolver


# --------------------------------------------------------------------- #
# decomposition properties
# --------------------------------------------------------------------- #
@given(st.integers(1, 64), st.integers(1, 64))
def test_block_ranges_partition(ncells, nblocks):
    if nblocks > ncells:
        with pytest.raises(ValueError):
            block_ranges(ncells, nblocks)
        return
    ranges = block_ranges(ncells, nblocks)
    assert ranges[0][0] == 0
    assert ranges[-1][1] == ncells
    for (a0, a1), (b0, b1) in zip(ranges, ranges[1:]):
        assert a1 == b0
    sizes = [hi - lo for lo, hi in ranges]
    assert max(sizes) - min(sizes) <= 1


@given(st.integers(1, 64))
def test_factor_ranks_product(n):
    dims = factor_ranks(n, 3, (128, 128, 128))
    assert int(np.prod(dims)) == n


def test_conf_decomposition_covers_domain():
    dec = ConfDecomposition.create((8, 6, 4), 8)
    seen = np.zeros((8, 6, 4), dtype=int)
    for rank in range(dec.num_blocks):
        rng = dec.local_ranges(rank)
        sl = tuple(slice(lo, hi) for lo, hi in rng)
        seen[sl] += 1
    assert np.all(seen == 1)


def test_neighbor_periodicity():
    dec = ConfDecomposition.create((8, 8), 4)
    for rank in range(4):
        for axis in range(2):
            right = dec.neighbor(rank, axis, +1)
            assert dec.neighbor(right, axis, -1) == rank


# --------------------------------------------------------------------- #
# simulated communicator
# --------------------------------------------------------------------- #
def test_comm_fifo_and_stats():
    comm = SimulatedComm(2)
    a = np.arange(4.0)
    comm.send(0, 1, a)
    comm.send(0, 1, 2 * a)
    assert np.allclose(comm.recv(0, 1), a)
    assert np.allclose(comm.recv(0, 1), 2 * a)
    assert comm.stats.messages == 2
    assert comm.stats.doubles == 8


def test_comm_copies_on_send():
    comm = SimulatedComm(2)
    a = np.ones(3)
    comm.send(0, 1, a)
    a[:] = 99.0
    assert np.allclose(comm.recv(0, 1), 1.0)


def test_comm_missing_message_raises():
    comm = SimulatedComm(2)
    with pytest.raises(RuntimeError):
        comm.recv(0, 1)
    with pytest.raises(ValueError):
        comm.send(0, 5, np.ones(1))


# --------------------------------------------------------------------- #
# decomposed == serial
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("nodes,cores", [(1, 2), (2, 1), (2, 2), (3, 2)])
def test_decomposed_rhs_matches_serial(nodes, cores, rng):
    conf = Grid([0.0], [1.0], [6])
    vel = Grid([-2.0, -2.0], [2.0, 2.0], [4, 6])
    pg = PhaseGrid(conf, vel)
    solver = VlasovModalSolver(pg, 1, "serendipity")
    f = rng.standard_normal(conf.cells + (solver.num_basis,) + vel.cells)
    em = rng.standard_normal(conf.cells + (8, solver.num_conf_basis))
    serial = solver.rhs(f, em)
    runner = DecomposedVlasovRunner(solver, nodes, cores)
    dist = runner.rhs(f, em)
    scale = max(float(np.max(np.abs(serial))), 1.0)
    assert np.max(np.abs(dist - serial)) / scale < 1e-13


def test_decomposed_2x_config(rng):
    conf = Grid([0.0, 0.0], [1.0, 1.0], [4, 4])
    vel = Grid([-2.0, -2.0], [2.0, 2.0], [4, 4])
    pg = PhaseGrid(conf, vel)
    solver = VlasovModalSolver(pg, 1, "serendipity")
    f = rng.standard_normal(conf.cells + (solver.num_basis,) + vel.cells)
    em = rng.standard_normal(conf.cells + (8, solver.num_conf_basis))
    serial = solver.rhs(f, em)
    runner = DecomposedVlasovRunner(solver, 4, 2)
    dist = runner.rhs(f, em)
    scale = max(float(np.max(np.abs(serial))), 1.0)
    assert np.max(np.abs(dist - serial)) / scale < 1e-13
    assert runner.comm.stats.messages > 0
    assert runner.comm.pending() == 0  # every ghost consumed


def test_halo_bytes_match_decomposition_accounting(rng):
    conf = Grid([0.0], [1.0], [6])
    vel = Grid([-2.0], [2.0], [4])
    pg = PhaseGrid(conf, vel)
    solver = VlasovModalSolver(pg, 1, "serendipity")
    f = rng.standard_normal(conf.cells + (solver.num_basis,) + vel.cells)
    em = rng.standard_normal(conf.cells + (8, solver.num_conf_basis))
    runner = DecomposedVlasovRunner(solver, 3, 1)
    runner.rhs(f, em)
    expected = runner.decomp.halo_doubles_per_step(solver.num_basis)
    assert runner.comm.stats.doubles == expected


# --------------------------------------------------------------------- #
# memory + scaling model
# --------------------------------------------------------------------- #
def test_shared_memory_saving_in_paper_band():
    """Sec. IV: shared velocity decomposition saves 2-3x node memory."""
    rep = memory_report(
        conf_cells=(64, 64, 64),
        vel_cells=(16, 16, 16),
        nodes=64,
        cores_per_node=64,
        num_basis=64,
    )
    assert 1.8 <= rep["saving_factor"] <= 3.5


def test_weak_scaling_shape():
    """Paper: near-ideal weak scaling; at worst ~25% of the per-step cost in
    halo exchange at 4096 nodes."""
    model = ClusterModel(cell_updates_per_second_core=1e5)
    base = ProblemSpec((8, 8, 8), (16, 16, 16), num_basis=64)
    series = weak_scaling_series(model, base, [1, 8, 64, 512, 4096])
    norm = [rec["normalized"] for rec in series]
    assert norm[0] == pytest.approx(1.0)
    assert all(n < 1.6 for n in norm)
    assert all(n2 >= n1 for n1, n2 in zip(norm, norm[1:]))  # monotone rise
    assert series[0]["halo_fraction"] == 0.0  # single node: no messages
    assert 0.15 < series[-1]["halo_fraction"] < 0.35  # ~25% at 4096


def test_strong_scaling_saturates():
    """Paper: ~4x speedup per 8x nodes, ~60x total at 512x more nodes.

    (The paper attributes the 4096-node step cost 80% to 'communication',
    which on KNL includes intra-node shared-memory traffic; our model folds
    that into the on-node starvation term, so the *inter-node* halo fraction
    here is lower — the speedup curve is the quantity compared.)"""
    model = ClusterModel(cell_updates_per_second_core=1e5)
    problem = ProblemSpec((32, 32, 32), (8, 8, 8), num_basis=64)
    series = strong_scaling_series(model, problem, [8, 64, 512, 4096])
    speedups = [rec["speedup"] for rec in series]
    ideals = [rec["ideal_speedup"] for rec in series]
    assert speedups[0] == pytest.approx(1.0)
    assert all(s2 > s1 for s1, s2 in zip(speedups, speedups[1:]))
    assert speedups[-1] < 0.5 * ideals[-1]
    # ~60x at 512x more nodes (paper's headline number), with slack
    assert 40 < speedups[-1] < 90
    # each 8x node increase buys roughly 4x (paper: "a factor of four")
    gains = [s2 / s1 for s1, s2 in zip(speedups, speedups[1:])]
    assert all(2.5 < g < 6.5 for g in gains)
    assert series[-1]["halo_fraction"] > 0.1
