"""Protocol-conformance suite: every registered system honors the Model API.

Run with ``pytest -m systems``.  Each registered system kind provides a
small ``example`` spec; the suite drives it exclusively through the
:class:`repro.systems.Model` protocol and checks the contracts every
runtime consumer relies on: state round-trip, ``rhs(out=)`` donation
safety, bit-exact checkpoint/resume, and serial == ``process:2`` where
sharding is supported.
"""

import multiprocessing as mp

import numpy as np
import pytest

from repro.runtime import Driver
from repro.systems import Model, System, build_system, get_system_kind, list_system_kinds

pytestmark = pytest.mark.systems

KIND_NAMES = [k.name for k in list_system_kinds()]


def _example_spec(name):
    kind = get_system_kind(name)
    assert kind.example is not None, (
        f"registered system {name!r} must provide a conformance example spec"
    )
    return kind.example()


@pytest.fixture(params=KIND_NAMES)
def kind_name(request):
    return request.param


# --------------------------------------------------------------------- #
def test_every_registered_system_is_a_model(kind_name):
    system = build_system(_example_spec(kind_name))
    assert isinstance(system, Model)
    assert isinstance(system, System)
    # the state dict must expose the very arrays the system steps
    state = system.state()
    assert state, "state() must not be empty"
    for key, arr in state.items():
        assert isinstance(arr, np.ndarray), key
    names = {sp.name for sp in system.species}
    assert {f"f/{n}" for n in names} <= set(state)


def test_state_roundtrip(kind_name):
    system = build_system(_example_spec(kind_name))
    before = {k: v.copy() for k, v in system.state().items()}
    system.step()
    after_step = {k: v.copy() for k, v in system.state().items()}
    assert any(
        not np.array_equal(before[k], after_step[k]) for k in before
    ), "stepping must change the state"
    # adopting the saved arrays restores the model exactly
    system.set_state({k: v.copy() for k, v in before.items()})
    system.time, system.step_count = 0.0, 0
    restored = system.state()
    assert set(restored) == set(before)
    for k in before:
        assert np.array_equal(restored[k], before[k]), k
    # and re-stepping from the restored state reproduces the first step
    dt = system.step()
    assert dt > 0
    for k in before:
        assert np.array_equal(system.state()[k], after_step[k]), k


def test_rhs_out_donation_safety(kind_name):
    system = build_system(_example_spec(kind_name))
    state = system.state()
    snapshot = {k: v.copy() for k, v in state.items()}
    fresh = system.rhs(state)
    assert set(fresh) == set(state)
    # rhs must not mutate its input state
    for k in state:
        assert np.array_equal(state[k], snapshot[k]), k
    # a donated buffer dict is filled in place with identical values
    out = {k: np.full_like(v, np.nan) for k, v in state.items()}
    ret = system.rhs(state, out=out)
    assert ret is out
    for k in state:
        assert ret[k] is out[k]
        assert np.array_equal(out[k], fresh[k]), k
    # donation is repeatable (no contamination from the previous fill)
    system.rhs(state, out=out)
    for k in state:
        assert np.array_equal(out[k], fresh[k]), k


def test_checkpoint_resume_bitexact(kind_name, tmp_path):
    spec = _example_spec(kind_name).with_overrides({"steps": 4})
    straight = Driver(spec, outdir=tmp_path / "straight")
    straight.run()

    half = Driver(
        spec.with_overrides({"steps": 2}), outdir=tmp_path / "half"
    )
    half.run()
    resumed = Driver.from_checkpoint(
        tmp_path / "half" / "checkpoint.npz",
        outdir=tmp_path / "resumed",
        overrides={"steps": 4},
    )
    resumed.run()

    a, b = straight.app.state(), resumed.app.state()
    assert set(a) == set(b)
    for k in a:
        assert np.array_equal(a[k], b[k]), k
    assert straight.app.time == resumed.app.time
    assert straight.history.times == resumed.history.times
    assert straight.history.field_energy == resumed.history.field_energy


def test_energies_and_observables_contract(kind_name):
    system = build_system(_example_spec(kind_name))
    energies = system.energies()
    assert {"field", "total"} <= set(energies)
    particle = {k: v for k, v in energies.items() if k.startswith("particle/")}
    assert set(particle) == {f"particle/{sp.name}" for sp in system.species}
    assert energies["total"] == pytest.approx(
        energies["field"] + sum(particle.values())
    )
    observables = system.observables()
    assert {f"particle_number/{sp.name}" for sp in system.species} <= set(
        observables
    )
    assert all(isinstance(v, float) for v in observables.values())


def test_effective_em_requires_maxwell_closure():
    system = build_system(_example_spec("poisson"))
    with pytest.raises(RuntimeError, match="Maxwell"):
        system.effective_em(np.zeros(1))


def test_non_shardable_system_rejected_by_process_backend():
    from repro.runtime import SpecError, build, build_app
    from repro.systems import NullFieldBlock, build_species_blocks, register_system
    from repro.systems.registry import _REGISTRY

    @register_system("_test_noshard", description="test-only", shardable=False)
    def _build(spec):
        grid = spec.conf_grid.build()
        return System(
            grid, build_species_blocks(spec, grid), field=NullFieldBlock(),
            poly_order=spec.poly_order, name="_test_noshard",
        )

    try:
        spec = build("advection_1d", nx=4, nv=8, poly_order=1).with_overrides(
            {"model": "_test_noshard", "backend": "process:2"}
        )
        with pytest.raises(SpecError, match="not shardable"):
            build_app(spec)
    finally:
        del _REGISTRY["_test_noshard"]


def test_record_jdote_gated_by_system_capability():
    from repro.runtime import SpecError, build

    with pytest.raises(SpecError, match="record_jdote"):
        build("two_stream", nx=4, nv=8).with_overrides(
            {"diagnostics.record_jdote": True}
        )
    spec = build("landau_damping", nx=4, nv=8).with_overrides(
        {"diagnostics.record_jdote": True}
    )
    assert spec.diagnostics.record_jdote


def test_field_block_cannot_be_rebound():
    from repro.grid import Grid
    from repro.systems import MaxwellBlock, FieldSpec, Species

    def f0(x, v):
        return np.exp(-(v**2) / 2)

    def species():
        return [Species("e", -1.0, 1.0, Grid([-4.0], [4.0], [6]), f0)]

    blk = MaxwellBlock(FieldSpec(evolve=True))
    System(Grid([0.0], [1.0], [4]), species(), field=blk, poly_order=1)
    with pytest.raises(ValueError, match="already bound"):
        System(Grid([0.0], [2.0], [8]), species(), field=blk, poly_order=1)


def test_register_system_requires_a_description():
    from repro.systems import register_system

    def nodoc_builder(spec):  # pragma: no cover - never built
        return None

    with pytest.raises(ValueError, match="description"):
        register_system("_test_nodesc")(nodoc_builder)
    from repro.systems.registry import _REGISTRY

    assert "_test_nodesc" not in _REGISTRY


def test_register_system_rejects_duplicate_names():
    from repro.systems import register_system

    def hijack(spec):  # pragma: no cover - never built
        return None

    with pytest.raises(ValueError, match="already registered"):
        register_system("maxwell", description="hijack")(hijack)
    from repro.systems import get_system_kind

    assert get_system_kind("maxwell").builder is not hijack


def test_advection_rejects_unused_spec_fields():
    from repro.runtime import SpecError, build

    with pytest.raises(SpecError, match="neutralize"):
        build("advection_1d", nx=4, nv=8).with_overrides({"neutralize": False})
    with pytest.raises(SpecError, match="epsilon0"):
        build("advection_1d", nx=4, nv=8).with_overrides({"epsilon0": 2.0})


@pytest.mark.shard
def test_serial_matches_process2(kind_name):
    kind = get_system_kind(kind_name)
    if not kind.shardable:
        pytest.skip(f"system {kind_name!r} does not support process sharding")
    if "fork" not in mp.get_all_start_methods():
        pytest.skip("process sharding requires the fork start method")
    spec = _example_spec(kind_name).with_overrides({"steps": 3})
    serial = build_system(spec)
    dts = [serial.step() for _ in range(3)]

    from repro.runtime import build_app

    sharded = build_app(spec.with_overrides({"backend": "process:2"}))
    try:
        for dt in dts:
            sharded.step(dt)
        a, b = serial.state(), sharded.state()
        assert set(a) == set(b)
        for k in a:
            assert np.array_equal(a[k], b[k]), k
        assert serial.energies() == sharded.energies()
    finally:
        sharded.close()
