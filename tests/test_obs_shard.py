"""Sharded observability: worker spans surface with distinct pids, merged
counters follow the per-worker model, and tracing never perturbs physics."""

import json

import numpy as np
import pytest

from repro.obs import OBS
from repro.runtime import Driver, build

pytestmark = pytest.mark.shard


def _spec(mode, **extra):
    overrides = {"observability.mode": mode}
    overrides.update(extra)
    return build(
        "landau_damping", nx=4, nv=8, steps=3, t_end=1e6, **overrides
    )


@pytest.fixture(autouse=True)
def _obs_sandbox(monkeypatch):
    monkeypatch.delenv("REPRO_OBS", raising=False)
    yield
    OBS.configure("off")


def test_sharded_trace_rows_per_worker(tmp_path):
    driver = Driver(
        _spec("trace", backend="process:2"), outdir=tmp_path
    )
    try:
        result = driver.run()
    finally:
        driver.close()
    assert result["status"] == "max_steps"
    doc = json.loads((tmp_path / "trace.json").read_text())
    spans = [ev for ev in doc["traceEvents"] if ev["ph"] == "X"]
    metas = [ev for ev in doc["traceEvents"] if ev["ph"] == "M"]
    row_names = {m["args"]["name"] for m in metas}
    assert {"driver", "shard-0", "shard-1"} <= row_names
    pids = {ev["pid"] for ev in spans}
    assert len(pids) == 3  # the driver plus two distinct worker processes
    names = {ev["name"] for ev in spans}
    assert {"halo_exchange", "barrier_wait", "rk_stage", "rhs", "step"} <= names
    # worker spans carry worker pids, not the driver's
    driver_pid = next(m["pid"] for m in metas if m["args"]["name"] == "driver")
    worker_spans = [ev for ev in spans if ev["name"] == "halo_exchange"]
    assert worker_spans and all(ev["pid"] != driver_pid for ev in worker_spans)


def test_sharded_counters_follow_worker_model(tmp_path):
    serial = Driver(_spec("summary"), outdir=tmp_path / "serial").run()
    ser = serial["obs"]["metrics"]
    driver = Driver(
        _spec("summary", backend="process:2"), outdir=tmp_path / "proc"
    )
    try:
        sharded = driver.run()
        shr = sharded["obs"]["metrics"]
        # the driver alone counts steps; every worker does every RK stage
        # (and therefore every RHS) over its own block
        assert shr["steps"] == ser["steps"] == 3.0
        assert shr["rk_stages"] == 2 * ser["rk_stages"]
        assert shr["rhs_calls"] == 2 * ser["rhs_calls"]
        assert shr["halo_exchanges"] == shr["rk_stages"]
        assert shr["halo_bytes"] > 0
        assert shr["barrier_waits"] >= 2 * shr["rk_stages"]
        assert ser["halo_exchanges"] == 0  # serial runs have no halos
        # metrics survive close(): the final drain is snapshotted
        driver.close()
        assert driver.summary()["obs"]["metrics"]["steps"] == 3.0
    finally:
        driver.close()


def test_sharded_bit_identical_with_tracing_on(tmp_path):
    ds = Driver(_spec("trace"), outdir=tmp_path / "serial")
    ds.run()
    serial_state = {k: v.copy() for k, v in ds.app.state().items()}
    dp = Driver(
        _spec("trace", backend="process:2"), outdir=tmp_path / "proc"
    )
    try:
        dp.run()
        sharded_state = dp.app.state()
        assert set(sharded_state) == set(serial_state)
        for key, ref in serial_state.items():
            assert np.array_equal(sharded_state[key], ref), (
                f"tracing perturbed sharded state {key!r}"
            )
    finally:
        dp.close()


def test_sharded_metrics_stream_parses(tmp_path):
    driver = Driver(
        _spec("summary", backend="process:2"), outdir=tmp_path
    )
    try:
        driver.run()
    finally:
        driver.close()
    lines = (tmp_path / "metrics.jsonl").read_text().splitlines()
    assert lines
    final = json.loads(lines[-1])
    assert final["metrics"]["rhs_calls"] == 18.0  # 2 workers x 3 stages x 3
