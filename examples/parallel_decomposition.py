#!/usr/bin/env python
"""The two-level decomposition of Sec. IV, end to end — simulated and real.

1. Runs a full Weibel simulation through ``repro.dist``: configuration-cell
   blocks on **real worker processes** with shared-memory halo exchange,
   verified bit-identical to the serial run, with measured halo traffic
   compared against the analytic model for the same decomposition.
2. Runs the modal Vlasov RHS under the *simulated* nodes x cores
   decomposition (the model reference: sequential execution, mailbox
   message counting) and verifies it matches the serial result.
3. Reports the exact node-memory saving of the shared-memory velocity
   decomposition (the paper's 2-3x claim) for the paper's 6D problem size.
4. Produces the Fig. 3 weak/strong scaling curves from the calibrated
   cluster model driven by this machine's measured kernel rate.

Run:  PYTHONPATH=src python examples/parallel_decomposition.py
"""

import os
import time

import numpy as np

from repro import Grid, PhaseGrid, VlasovModalSolver
from repro.dist import ShardPlan
from repro.parallel import (
    ClusterModel,
    DecomposedVlasovRunner,
    ProblemSpec,
    memory_report,
    strong_scaling_series,
    weak_scaling_series,
)
from repro.runtime import build
from repro.runtime.driver import build_app


def real_sharded_execution():
    """Section 1: actual concurrency through the ``process:N`` backend."""
    print("=== real process-sharded execution (repro.dist) ===")
    spec = build("weibel_2x2v", nx=6, nv=10, poly_order=1, steps=4)
    serial = build_app(spec)
    dt = 0.5 * serial.suggested_dt()
    start = time.perf_counter()
    for _ in range(spec.steps):
        serial.step(dt)
    t_serial = (time.perf_counter() - start) / spec.steps
    ref = {k: np.array(v) for k, v in serial.state().items()}

    stages = 3  # ssp-rk3: one halo exchange per stage
    for n in (2, 4):
        app = build_app(spec.with_overrides({"backend": f"process:{n}"}))
        try:
            start = time.perf_counter()
            for _ in range(spec.steps):
                app.step(dt)
            t_shard = (time.perf_counter() - start) / spec.steps
            bitwise = all(
                np.array_equal(ref[k], v) for k, v in app.state().items()
            )
            measured = app.halo_stats["f"]["doubles"] / spec.steps
            plan = ShardPlan.create(spec.conf_grid.cells, n)
            npb = app.solvers["elc"].num_basis
            model = plan.model_halo_doubles(npb, spec.species[0].velocity_grid.cells)
            print(
                f"  process:{n}: {1e3 * t_shard:7.2f} ms/step "
                f"(serial {1e3 * t_serial:.2f}; {t_serial / t_shard:.2f}x), "
                f"bitwise={'OK' if bitwise else 'FAIL'}, "
                f"halo {8 * measured / 1e6:.3f} MB/step measured "
                f"vs {8 * model * stages / 1e6:.3f} model"
            )
        finally:
            app.close()
    print("  (speedup needs real cores; this machine has "
          f"{os.cpu_count()} — the bitwise and traffic checks hold regardless)")


def main():
    real_sharded_execution()

    rng = np.random.default_rng(7)
    conf = Grid([0.0, 0.0], [1.0, 1.0], [6, 6])
    vel = Grid([-2.0, -2.0], [2.0, 2.0], [6, 6])
    pg = PhaseGrid(conf, vel)
    solver = VlasovModalSolver(pg, 1, "serendipity")
    f = rng.standard_normal(conf.cells + (solver.num_basis,) + vel.cells)
    em = rng.standard_normal(conf.cells + (8, solver.num_conf_basis))

    print("\n=== simulated decomposition (model reference) ===")
    serial = solver.rhs(f, em)
    for nodes, cores in [(2, 1), (4, 2), (9, 3)]:
        runner = DecomposedVlasovRunner(solver, nodes, cores)
        dist = runner.rhs(f, em)
        err = np.max(np.abs(dist - serial)) / np.max(np.abs(serial))
        stats = runner.comm.stats
        print(f"  {nodes:2d} nodes x {cores} cores: max rel err {err:.1e}, "
              f"{stats.messages} msgs, {stats.doubles*8/1e6:.1f} MB halo")

    print("\n=== shared-memory node-memory saving (paper: 2-3x) ===")
    rep = memory_report(
        conf_cells=(64, 64, 64), vel_cells=(16, 16, 16),
        nodes=64, cores_per_node=64, num_basis=64, num_species=2,
    )
    print(f"  shared velocity decomposition : {rep['shared_node_bytes']/2**30:8.1f} GiB/node")
    print(f"  pure per-core decomposition   : {rep['pure_mpi_node_bytes']/2**30:8.1f} GiB/node")
    print(f"  saving factor                 : {rep['saving_factor']:.2f}x")

    print("\n=== measured single-core kernel rate on this machine ===")
    n_eval = 5
    t0 = time.perf_counter()
    for _ in range(n_eval):
        solver.rhs(f, em)
    rate = n_eval * pg.num_cells / (time.perf_counter() - t0)
    print(f"  {rate:,.0f} cell updates/s (full volume+surface update)")

    model = ClusterModel(cell_updates_per_second_core=rate)
    print("\n=== Fig. 3 (left): weak scaling, 6D p=1, base (8,8,8,16,16,16) ===")
    base = ProblemSpec((8, 8, 8), (16, 16, 16), num_basis=64)
    for rec in weak_scaling_series(model, base, [1, 8, 64, 512, 4096]):
        print(f"  {rec['nodes']:5d} nodes: normalized t/step "
              f"{rec['normalized']:.2f}  (halo {rec['halo_fraction']:.0%})")

    print("\n=== Fig. 3 (right): strong scaling, 6D p=1, (32^3, 8^3) ===")
    model2 = ClusterModel(cell_updates_per_second_core=rate)
    prob = ProblemSpec((32, 32, 32), (8, 8, 8), num_basis=64)
    for rec in strong_scaling_series(model2, prob, [8, 64, 512, 4096]):
        print(f"  {rec['nodes']:5d} nodes: speedup {rec['speedup']:6.1f} "
              f"(ideal {rec['ideal_speedup']:4.0f}, halo {rec['halo_fraction']:.0%})")
    print("  paper: ~60x at 512x more nodes, ~4x per 8x node step")


if __name__ == "__main__":
    main()
