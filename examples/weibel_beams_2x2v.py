#!/usr/bin/env python
"""Counter-streaming beams in 2X2V: the paper's Fig. 5 workload (reduced).

Two cold counter-streaming electron beams over a neutralizing proton
background drive Weibel/two-stream/filamentation ("oblique") instabilities.
The run reproduces the qualitative physics of Skoutnev et al. (2019) that
the paper demonstrates: exponential magnetic-field growth at the linear
kinetic rate, nonlinear saturation, and net energy conversion from beam
kinetic energy to electromagnetic and thermal energy — with the phase-space
slices (y-vy and vx-vy) that a continuum method resolves without PIC noise.

Resolution is reduced from the production runs in the paper (this is a
laptop-scale script); the physics shape — who grows, at what rate, where it
saturates — is preserved.

Run:  python examples/weibel_beams_2x2v.py  [--quick]
"""

import argparse
import time

import numpy as np

from repro import FieldSpec, Grid, Species, VlasovMaxwellApp
from repro.basis.modal import ModalBasis
from repro.diagnostics import EnergyHistory, fit_exponential_growth, plane_slice
from repro.linear import filamentation_growth_rate


def build_app(nx=6, nv=14, poly_order=2, drift=0.6, vt=0.2, seed_amp=1e-5):
    """Counter-streaming beams along x, filamentation wavevector along y."""
    ky = 2 * np.pi / 4.0  # one filamentation wavelength across the box

    def beams(x, y, vx, vy):
        norm = 1.0 / (2 * np.pi * vt ** 2)
        core = 0.5 * (
            np.exp(-((vx - drift) ** 2 + vy ** 2) / (2 * vt ** 2))
            + np.exp(-((vx + drift) ** 2 + vy ** 2) / (2 * vt ** 2))
        )
        return norm * core * (1.0 + 0 * x)

    def seed_bz(x, y):
        return seed_amp * np.cos(ky * y)

    vmax = drift + 4 * vt
    electrons = Species(
        "elc", -1.0, 1.0,
        Grid([-vmax] * 2, [vmax] * 2, [nv, nv]),
        beams,
    )
    app = VlasovMaxwellApp(
        conf_grid=Grid([0.0, 0.0], [4.0, 4.0], [nx, nx]),
        species=[electrons],
        field=FieldSpec(initial={"Bz": seed_bz}),
        poly_order=poly_order,
        family="serendipity",
        cfl=0.8,
    )
    return app, ky


def render(sl, title, rows=24):
    vals = sl["values"].T[::-1]
    lo, hi = vals.min(), vals.max()
    ramp = " .:-=+*#%@"
    print(f"\n{title}  (min {lo:.3g}, max {hi:.3g})")
    step = max(1, vals.shape[0] // rows)
    for row in vals[::step]:
        idx = ((row - lo) / (hi - lo + 1e-30) * (len(ramp) - 1)).astype(int)
        print("".join(ramp[i] for i in idx))


def main(argv=None):
    parser = argparse.ArgumentParser()
    parser.add_argument("--quick", action="store_true", help="short demo run")
    args = parser.parse_args(argv)

    app, ky = build_app(nx=4 if args.quick else 6, nv=12 if args.quick else 14)
    drift, vt = 0.6, 0.2
    pg = app.phase_grids["elc"]
    basis = ModalBasis(pg.pdim, app.poly_order, app.family)

    print(f"2X2V grid {pg.cells}, {app.solvers['elc'].num_basis} DOF/cell "
          f"({app.f['elc'].size:,} total)")

    history = EnergyHistory()
    t_end = 14.0 if args.quick else 30.0
    snaps = {}
    snaps[0.0] = app.f["elc"].copy()
    start = time.time()
    summary = app.run(t_end, diagnostics=history)
    snaps[app.time] = app.f["elc"].copy()
    print(f"{summary['steps']} steps in {time.time()-start:.0f}s "
          f"({summary['wall_per_step']*1e3:.0f} ms/step)")

    t = np.array(history.times)
    e_field = np.array(history.field_energy)
    e_part = np.array(history.particle_energy["elc"])
    growth_window = (4.0, min(0.85 * t_end, t[np.argmax(e_field)]))
    fit = fit_exponential_growth(t, e_field, *growth_window)
    theory = filamentation_growth_rate(k=ky, drift=drift, vt=vt)
    print(f"\nfield-energy growth rate /2 : {fit.rate/2:.3f}")
    print(f"linear filamentation theory : {theory.imag:.3f}")
    print(f"energy conversion: kinetic {e_part[0]:.4f} -> {e_part[-1]:.4f}, "
          f"field {e_field[0]:.2e} -> {e_field[-1]:.2e}")
    print(f"total-energy drift: {history.relative_drift():.2e}")

    # Fig. 5 style slices at the end state
    f_end = snaps[app.time]
    cdim = pg.cdim
    render(
        plane_slice(f_end, pg, basis, axes=(1, cdim + 1), fixed={}, resolution=48),
        "f(y, vy) slice",
    )
    render(
        plane_slice(f_end, pg, basis, axes=(cdim, cdim + 1), fixed={}, resolution=48),
        "f(vx, vy) slice (beam rings/merging)",
    )


if __name__ == "__main__":
    main()
