#!/usr/bin/env python
"""Counter-streaming beams in 2X2V: the paper's Fig. 5 workload (reduced).

Two cold counter-streaming electron beams over a neutralizing proton
background drive Weibel/two-stream/filamentation ("oblique") instabilities.
The run reproduces the qualitative physics of Skoutnev et al. (2019) that
the paper demonstrates: exponential magnetic-field growth at the linear
kinetic rate, nonlinear saturation, and net energy conversion from beam
kinetic energy to electromagnetic and thermal energy — with the phase-space
slices (y-vy and vx-vy) that a continuum method resolves without PIC noise.

The setup is the registry's ``weibel_2x2v`` scenario (the resolution is
reduced from the production runs in the paper — this is a laptop-scale
script; the physics shape is preserved).  ``python -m repro campaign`` can
scan its drift/vt/seed parameters in batch.

Run:  python examples/weibel_beams_2x2v.py  [--quick]
"""

import argparse
import time

import numpy as np

from repro.basis.modal import ModalBasis
from repro.diagnostics import fit_exponential_growth, plane_slice
from repro.linear import filamentation_growth_rate
from repro.runtime import Driver, build


def render(sl, title, rows=24):
    vals = sl["values"].T[::-1]
    lo, hi = vals.min(), vals.max()
    ramp = " .:-=+*#%@"
    print(f"\n{title}  (min {lo:.3g}, max {hi:.3g})")
    step = max(1, vals.shape[0] // rows)
    for row in vals[::step]:
        idx = ((row - lo) / (hi - lo + 1e-30) * (len(ramp) - 1)).astype(int)
        print("".join(ramp[i] for i in idx))


def main(argv=None):
    parser = argparse.ArgumentParser()
    parser.add_argument("--quick", action="store_true", help="short demo run")
    args = parser.parse_args(argv)

    drift, vt, box = 0.6, 0.2, 4.0
    t_end = 14.0 if args.quick else 30.0
    spec = build(
        "weibel_2x2v",
        drift=drift, vt=vt, box=box,
        nx=4 if args.quick else 6,
        nv=12 if args.quick else 14,
        t_end=t_end,
    )
    ky = 2 * np.pi / box
    driver = Driver(spec)
    app = driver.app
    pg = app.phase_grids["elc"]
    basis = ModalBasis(pg.pdim, app.poly_order, app.family)

    print(f"2X2V grid {pg.cells}, {app.solvers['elc'].num_basis} DOF/cell "
          f"({app.f['elc'].size:,} total)")

    start = time.time()
    summary = driver.run()
    print(f"{summary['steps']} steps in {time.time()-start:.0f}s "
          f"({summary['wall_per_step']*1e3:.0f} ms/step)")

    history = driver.history
    t = np.array(history.times)
    e_field = np.array(history.field_energy)
    e_part = np.array(history.particle_energy["elc"])
    growth_window = (4.0, min(0.85 * t_end, t[np.argmax(e_field)]))
    fit = fit_exponential_growth(t, e_field, *growth_window)
    theory = filamentation_growth_rate(k=ky, drift=drift, vt=vt)
    print(f"\nfield-energy growth rate /2 : {fit.rate/2:.3f}")
    print(f"linear filamentation theory : {theory.imag:.3f}")
    print(f"energy conversion: kinetic {e_part[0]:.4f} -> {e_part[-1]:.4f}, "
          f"field {e_field[0]:.2e} -> {e_field[-1]:.2e}")
    print(f"total-energy drift: {history.relative_drift():.2e}")

    # Fig. 5 style slices at the end state
    f_end = app.f["elc"]
    cdim = pg.cdim
    render(
        plane_slice(f_end, pg, basis, axes=(1, cdim + 1), fixed={}, resolution=48),
        "f(y, vy) slice",
    )
    render(
        plane_slice(f_end, pg, basis, axes=(cdim, cdim + 1), fixed={}, resolution=48),
        "f(vx, vy) slice (beam rings/merging)",
    )


if __name__ == "__main__":
    main()
