#!/usr/bin/env python
"""Electrostatic two-stream instability with phase-space diagnostics.

Two counter-streaming electron beams are two-stream unstable; the field
grows exponentially at the kinetic growth rate, traps particles, and rolls
the distribution function into the classic phase-space vortex.  A continuum
method renders the vortex noise-free — the property the paper's Fig. 5
showcases (here in the cheaper electrostatic 1X1V setting; see
``weibel_beams_2x2v.py`` for the full electromagnetic analogue).

Run:  python examples/two_stream_instability.py
"""

import numpy as np

from repro import Grid, Species
from repro.apps.vlasov_poisson import VlasovPoissonApp
from repro.basis.modal import ModalBasis
from repro.diagnostics import fit_exponential_growth, plane_slice
from repro.linear import two_stream_growth_rate


def main():
    drift, vt, k = 2.0, 0.5, 0.5
    length = 2 * np.pi / k

    def beams(x, v):
        pert = 1 + 1e-4 * np.cos(k * x)
        norm = np.sqrt(2 * np.pi * vt ** 2)
        return pert * 0.5 * (
            np.exp(-((v - drift) ** 2) / (2 * vt ** 2))
            + np.exp(-((v + drift) ** 2) / (2 * vt ** 2))
        ) / norm

    electrons = Species("elc", -1.0, 1.0, Grid([-8.0], [8.0], [48]), beams)
    app = VlasovPoissonApp(
        Grid([0.0], [length], [24]), [electrons], poly_order=2, cfl=0.6
    )

    times, energies = [], []
    app.run(
        40.0,
        diagnostics=lambda a: (times.append(a.time), energies.append(a.field_energy())),
    )
    t = np.array(times)
    e = np.array(energies)

    fit = fit_exponential_growth(t, e, t_min=5.0, t_max=18.0)
    theory = two_stream_growth_rate(k=k, drift=drift, vt=vt)
    print(f"measured growth rate : {fit.rate/2:.4f}")
    print(f"linear kinetic theory: {theory.imag:.4f}")
    print(f"saturation field energy: {e.max():.3e} (initial {e[0]:.3e})")

    # phase-space vortex snapshot (ASCII rendering of the x-v plane)
    basis = ModalBasis(2, app.poly_order, app.family)
    sl = plane_slice(
        app.f["elc"], app.phase_grids["elc"], basis, axes=(0, 1), fixed={},
        resolution=48,
    )
    vals = sl["values"].T[::-1]  # v on the vertical axis, up = positive
    lo, hi = vals.min(), vals.max()
    ramp = " .:-=+*#%@"
    print("\nf(x, v) at end of run (phase-space vortex):")
    for row in vals[::2]:
        idx = ((row - lo) / (hi - lo + 1e-30) * (len(ramp) - 1)).astype(int)
        print("".join(ramp[i] for i in idx))


if __name__ == "__main__":
    main()
