#!/usr/bin/env python
"""Electrostatic two-stream instability with phase-space diagnostics.

Two counter-streaming electron beams are two-stream unstable; the field
grows exponentially at the kinetic growth rate, traps particles, and rolls
the distribution function into the classic phase-space vortex.  A continuum
method renders the vortex noise-free — the property the paper's Fig. 5
showcases (here in the cheaper electrostatic 1X1V setting; see
``weibel_beams_2x2v.py`` for the full electromagnetic analogue).

The setup is the registry's ``two_stream`` scenario — equivalent to
``python -m repro run two_stream`` — with the phase-space rendering layered
on top of the driver's app.

Run:  python examples/two_stream_instability.py
"""

import numpy as np

from repro.basis.modal import ModalBasis
from repro.diagnostics import fit_exponential_growth, plane_slice
from repro.linear import two_stream_growth_rate
from repro.runtime import Driver, build


def main():
    drift, vt, k = 2.0, 0.5, 0.5
    spec = build("two_stream", drift=drift, vt=vt, k=k, nv=48, t_end=40.0)
    driver = Driver(spec)
    driver.run()
    app = driver.app

    t = np.array(driver.history.times)
    e = np.array(driver.history.field_energy)

    fit = fit_exponential_growth(t, e, t_min=5.0, t_max=18.0)
    theory = two_stream_growth_rate(k=k, drift=drift, vt=vt)
    print(f"measured growth rate : {fit.rate/2:.4f}")
    print(f"linear kinetic theory: {theory.imag:.4f}")
    print(f"saturation field energy: {e.max():.3e} (initial {e[0]:.3e})")

    # phase-space vortex snapshot (ASCII rendering of the x-v plane)
    basis = ModalBasis(2, app.poly_order, app.family)
    sl = plane_slice(
        app.f["elc"], app.phase_grids["elc"], basis, axes=(0, 1), fixed={},
        resolution=48,
    )
    vals = sl["values"].T[::-1]  # v on the vertical axis, up = positive
    lo, hi = vals.min(), vals.max()
    ramp = " .:-=+*#%@"
    print("\nf(x, v) at end of run (phase-space vortex):")
    for row in vals[::2]:
        idx = ((row - lo) / (hi - lo + 1e-30) * (len(ramp) - 1)).astype(int)
        print("".join(ramp[i] for i in idx))


if __name__ == "__main__":
    main()
