#!/usr/bin/env python
"""Collisional relaxation: the Dougherty (LBO) Fokker–Planck operator.

A bump-on-tail electron distribution relaxes to a Maxwellian under the
alias-free DG discretization of the Dougherty collision operator (the
operator whose cost footprint the paper quantifies in footnote 7: it
roughly doubles the kinetic update).  Density, momentum, and energy are
conserved to machine precision throughout the relaxation.

The setup is the registry's ``collisional_relaxation`` scenario (declare
``--set operator=bgk`` on the CLI for the BGK variant); the driver is run
in segments so the invariants can be sampled along the way.

Run:  python examples/collisional_relaxation.py
"""

import numpy as np

from repro.basis.modal import ModalBasis
from repro.collisions import BGKCollisions
from repro.moments import integrate_conf_field
from repro.runtime import Driver, build


def main():
    nu = 0.8
    spec = build("collisional_relaxation", nu=nu, t_end=6.0)
    driver = Driver(spec)
    app = driver.app
    mom = app.moments["elc"]
    pg = app.phase_grids["elc"]
    bgk = BGKCollisions(pg, 2, nu=nu)  # provides the target Maxwellian

    def invariants():
        f = app.f["elc"]
        return (
            integrate_conf_field(mom.compute("M0", f), pg),
            integrate_conf_field(mom.compute("M1x", f), pg),
            integrate_conf_field(mom.compute("M2", f), pg),
        )

    n0, p0, e0 = invariants()
    print(f"t=0     N={n0:.10f}  P={p0:.10f}  E={e0:.10f}")
    dist0 = np.max(np.abs(app.f["elc"] - bgk.maxwellian_coefficients(app.f["elc"], mom)))

    for t_target in (1.0, 3.0, 6.0):
        driver.run(t_end=t_target)
        n, p, e = invariants()
        dist = np.max(
            np.abs(app.f["elc"] - bgk.maxwellian_coefficients(app.f["elc"], mom))
        )
        print(
            f"t={app.time:4.1f}  dN={abs(n-n0)/n0:.1e}  dP={abs(p-p0):.1e}  "
            f"dE={abs(e-e0)/e0:.1e}  |f - f_M| = {dist:.3e} "
            f"({dist/dist0:.1%} of initial)"
        )

    # 1-D cut of f(v) at the domain center after relaxation
    basis = ModalBasis(2, 2, "serendipity")
    v = np.linspace(-7.5, 7.5, 61)
    from repro.diagnostics import evaluate_points

    pts = np.stack([np.full_like(v, 0.5), v], axis=1)
    fv = evaluate_points(app.f["elc"], pg, basis, pts)
    print("\nrelaxed f(v) (the bump has merged into the Maxwellian):")
    ramp = " .:-=+*#%@"
    hi = fv.max()
    bars = (np.clip(fv, 0, None) / hi * 30).astype(int)
    for vi, b in zip(v[::3], bars[::3]):
        print(f"  v={vi:+5.1f} |" + "#" * b)


if __name__ == "__main__":
    main()
