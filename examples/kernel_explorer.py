#!/usr/bin/env python
"""Inspect the CAS-generated kernels (the paper's Fig. 1, for any config).

Prints the fully-unrolled volume kernel source for a chosen phase-space
dimensionality / polynomial order / basis family, its exact multiplication
count, and the comparison against the alias-free nodal (quadrature) cost —
the "~70 vs ~250 multiplications" argument of Sec. II/III.

Run:  python examples/kernel_explorer.py [--cdim 1] [--vdim 2] [-p 1]
      [--family tensor] [--full-source]
"""

import argparse

from repro.cas.codegen import count_multiplications, emit_kernel_source
from repro.kernels import compare_costs, get_vlasov_kernels


def main(argv=None):
    parser = argparse.ArgumentParser()
    parser.add_argument("--cdim", type=int, default=1)
    parser.add_argument("--vdim", type=int, default=2)
    parser.add_argument("-p", "--poly-order", type=int, default=1)
    parser.add_argument(
        "--family", default="tensor",
        choices=["tensor", "serendipity", "maximal-order"],
    )
    parser.add_argument("--full-source", action="store_true")
    args = parser.parse_args(argv)

    k = get_vlasov_kernels(args.cdim, args.vdim, args.poly_order, args.family)
    print(f"{args.cdim}X{args.vdim}V p={args.poly_order} {args.family}: "
          f"Np = {k.num_basis} (config-space Npc = {k.cfg_basis.num_basis})")

    print("\n--- generated volume kernel: streaming, direction x0 " + "-" * 20)
    src = emit_kernel_source("vlasov_vol_stream_x0", k.vol_stream[0])
    print(src if args.full_source else "\n".join(src.splitlines()[:24]))
    if not args.full_source:
        print(f"... [{len(src.splitlines())} lines total; --full-source to see all]")

    print("\n--- exact multiplication counts (per cell, forward-Euler update) ---")
    cost = compare_costs(k)
    for key, val in cost.modal.items():
        print(f"  modal  {key:24s} {val:>10,}")
    for key, val in cost.nodal.items():
        print(f"  nodal  {key:24s} {val:>10,}")
    print(f"\n  modal/nodal speedup (total): {cost.speedup:.1f}x")
    vol_ratio = cost.nodal["volume_total"] / max(cost.modal["volume_total"], 1)
    print(f"  volume kernels alone       : {vol_ratio:.1f}x")

    print("\n--- per-kernel sparsity ---")
    for name, ts in [
        ("volume streaming x0", k.vol_stream[0]),
        ("volume acceleration v0", k.vol_accel[0]),
        ("surface streaming x0 (L,L)", k.surf_stream[0][("L", "L")]),
        ("surface acceleration v0 (L,L)", k.surf_accel[0][("L", "L")]),
        ("moment M0", k.moments["M0"]),
        ("moment M2", k.moments["M2"]),
    ]:
        dense = ts.nout * ts.nin * max(len(ts.terms), 1)
        print(f"  {name:30s} nnz={ts.num_entries:6d}  "
              f"mults={count_multiplications(ts):6d}  "
              f"fill={(ts.num_entries / dense if dense else 0):6.1%}")


if __name__ == "__main__":
    main()
