#!/usr/bin/env python
"""Quickstart: Landau damping of a Langmuir wave (Vlasov–Maxwell, 1X1V).

The "hello world" of continuum kinetics: a small density perturbation on a
Maxwellian electron plasma launches a Langmuir oscillation whose electric
field is collisionlessly damped by resonant particles.  The run uses the
paper's alias-free modal DG algorithm end to end and compares the measured
damping rate with the root of the kinetic dispersion relation.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import FieldSpec, Grid, Species, VlasovMaxwellApp
from repro.diagnostics import EnergyHistory, fit_exponential_growth
from repro.linear import landau_damping_rate


def main():
    k = 0.5          # wavenumber in Debye lengths
    amp = 1e-3       # perturbation amplitude (linear regime)
    length = 2 * np.pi / k

    def initial_f(x, v):
        return (1 + amp * np.cos(k * x)) * np.exp(-v ** 2 / 2) / np.sqrt(2 * np.pi)

    def initial_ex(x):
        # consistent with Gauss's law for the perturbed density
        return -amp / k * np.sin(k * x)

    electrons = Species(
        name="elc",
        charge=-1.0,
        mass=1.0,
        velocity_grid=Grid([-6.0], [6.0], [24]),
        initial=initial_f,
    )
    app = VlasovMaxwellApp(
        conf_grid=Grid([0.0], [length], [16]),
        species=[electrons],
        field=FieldSpec(initial={"Ex": initial_ex}),
        poly_order=2,
        family="serendipity",
        cfl=0.6,
    )

    print(f"phase-space DOF: {app.f['elc'].size:,} "
          f"({app.solvers['elc'].num_basis} per cell)")
    history = EnergyHistory()
    summary = app.run(20.0, diagnostics=history)
    print(f"advanced to t={summary['time']:.1f} in {summary['steps']} steps "
          f"({summary['wall_per_step']*1e3:.1f} ms/step)")

    t = np.array(history.times)
    e_field = np.array(history.field_energy)
    fit = fit_exponential_growth(t, e_field, t_min=1.0, t_max=18.0)
    theory = landau_damping_rate(k)
    print(f"measured damping rate : {fit.rate/2:+.4f}")
    print(f"linear kinetic theory : {theory.imag:+.4f}  (omega_r = {theory.real:.4f})")
    print(f"total energy drift    : {history.relative_drift():.2e} "
          "(time-discretization only; the spatial scheme conserves exactly)")
    n0 = app.particle_number("elc")
    print(f"particles             : {n0:.12f} (conserved to machine precision)")


if __name__ == "__main__":
    main()
