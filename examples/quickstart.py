#!/usr/bin/env python
"""Quickstart: Landau damping of a Langmuir wave (Vlasov–Maxwell, 1X1V).

The "hello world" of continuum kinetics: a small density perturbation on a
Maxwellian electron plasma launches a Langmuir oscillation whose electric
field is collisionlessly damped by resonant particles.  The setup comes
from the declarative scenario registry (the same one ``python -m repro run
landau_damping`` uses) and compiles to a composable
:class:`repro.systems.System` — species blocks + a Maxwell field closure —
running the paper's alias-free modal DG algorithm end to end; the measured
damping rate is compared with the root of the kinetic dispersion relation.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.diagnostics import fit_exponential_growth
from repro.linear import landau_damping_rate
from repro.runtime import Driver, build


def main():
    k = 0.5
    spec = build("landau_damping", k=k, t_end=20.0)
    driver = Driver(spec)
    app = driver.app  # a repro.systems.System (model="maxwell")

    print(f"system: {app}")
    print(f"phase-space DOF: {app.f['elc'].size:,} "
          f"({app.solvers['elc'].num_basis} per cell)")
    summary = driver.run()
    print(f"advanced to t={summary['time']:.1f} in {summary['steps']} steps "
          f"({summary['wall_per_step']*1e3:.1f} ms/step)")

    t = np.array(driver.history.times)
    e_field = np.array(driver.history.field_energy)
    fit = fit_exponential_growth(t, e_field, t_min=1.0, t_max=18.0)
    theory = landau_damping_rate(k)
    print(f"measured damping rate : {fit.rate/2:+.4f}")
    print(f"linear kinetic theory : {theory.imag:+.4f}  (omega_r = {theory.real:.4f})")
    print(f"total energy drift    : {driver.history.relative_drift():.2e} "
          "(time-discretization only; the spatial scheme conserves exactly)")
    n0 = summary["particle_number"]["elc"]
    print(f"particles             : {n0:.12f} (conserved to machine precision)")


if __name__ == "__main__":
    main()
