#!/usr/bin/env python
"""Composing and registering kinetic systems through ``repro.systems``.

The System API makes a new workload a *declaration*, not a new app class.
This example does both things the API is for:

1. **Compose** a System directly from blocks: two tracer populations
   (a cold drifting beam and a warm background) streaming through a
   field-free domain — a two-species phase-mixing race.
2. **Register** a brand-new system kind (``driven_tracers``: field-free
   advection plus a prescribed oscillating drive) and run it through the
   exact same declarative spec -> Driver pipeline the built-in scenarios
   use.  No core file changes; the registry *is* the extension point.

Run:  python examples/custom_system.py
"""

import numpy as np

from repro.diagnostics import EnergyHistory
from repro.grid import Grid
from repro.runtime import Driver, SimulationSpec
from repro.systems import (
    NullFieldBlock,
    Species,
    System,
    register_system,
)


def compose_directly():
    """Part 1: a System assembled by hand from blocks."""
    k = 1.0

    def beam(x, v):
        return (1 + 0.2 * np.cos(k * x)) * np.exp(-((v - 2.0) ** 2) / 0.08) / np.sqrt(
            0.08 * np.pi
        )

    def background(x, v):
        return (1 + 0.2 * np.cos(k * x)) * np.exp(-(v**2) / 2) / np.sqrt(2 * np.pi)

    system = System(
        conf_grid=Grid([0.0], [2 * np.pi / k], [16]),
        species=[
            Species("beam", 0.0, 1.0, Grid([-1.0], [5.0], [24]), beam),
            Species("bg", 0.0, 1.0, Grid([-6.0], [6.0], [24]), background),
        ],
        field=NullFieldBlock(),
        poly_order=2,
        name="tracer_race",
    )
    hist = EnergyHistory()
    summary = system.run(4.0, diagnostics=hist)
    print(f"composed system: {system}")
    print(
        f"  {summary['steps']} steps to t={summary['time']:.2f}, "
        f"{1e3 * summary['wall_per_step']:.2f} ms/step"
    )
    for name in ("beam", "bg"):
        print(
            f"  {name:>4}: N = {system.particle_number(name):.12f} "
            f"(conserved), W = {system.particle_energy(name):.6f}"
        )
    drift = hist.relative_drift()
    print(f"  total-energy drift: {drift:.2e} (streaming conserves exactly)")


# ----------------------------------------------------------------------- #
# Part 2: register a new system kind and drive it declaratively
# ----------------------------------------------------------------------- #
@register_system(
    "driven_tracers",
    description="field-free tracers under a prescribed oscillating E-drive",
)
def build_driven_tracers(spec: SimulationSpec) -> System:
    """Tracer advection plus whatever external drive the spec declares."""
    from repro.systems import build_external_field, build_species_blocks

    conf_grid = spec.conf_grid.build()
    return System(
        conf_grid,
        build_species_blocks(spec, conf_grid),
        field=NullFieldBlock(),
        poly_order=spec.poly_order,
        cfl=spec.cfl,
        stepper=spec.stepper,
        backend=spec.backend,
        external=build_external_field(spec),
        name="driven_tracers",
    )


def run_registered():
    spec = SimulationSpec.from_dict(
        {
            "name": "driven_tracers_demo",
            "model": "driven_tracers",  # <- the name registered above
            "conf_grid": {"lower": [0.0], "upper": [6.283185307179586], "cells": [12]},
            "species": [
                {
                    "name": "ions",
                    "charge": 1.0,
                    "mass": 1.0,
                    "velocity_grid": {"lower": [-6.0], "upper": [6.0], "cells": [16]},
                    "initial": {"kind": "maxwellian", "vt": 1.0},
                }
            ],
            "external_field": {
                "components": {"Ex": {"kind": "sine", "amp": 0.05, "k": 1.0}},
                "omega": 1.2,
                "ramp": 1.0,
            },
            "t_end": 3.0,
            "steps": 40,
        }
    )
    driver = Driver(spec)
    summary = driver.run()
    print(f"registered system {spec.model!r} via the declarative pipeline:")
    print(
        f"  status={summary['status']} steps={summary['steps']} "
        f"t={summary['time']:.2f}"
    )
    print(
        f"  drive pumped the tracers: W = "
        f"{summary['total_energy']:.6f} (t=0: "
        f"{driver.history.total[0]:.6f})"
    )


if __name__ == "__main__":
    compose_directly()
    print()
    run_registered()
