"""Table I — modal vs alias-free nodal (quadrature) cost, 2X3V p=2, 112 DOF.

The paper's headline cost experiment: a serial 2X3V Vlasov–Maxwell step with
two species, p=2 Serendipity (112 DOF/cell), SSP-RK3.  On the paper's
162x163 grid the nodal scheme took 1079.63 s/step (1033.89 s in the Vlasov
solve) and the modal scheme 67.43 s/step (60.34 s Vlasov): reductions of
~16x (total) and ~17x (Vlasov).

Our substrate is NumPy on one core, so the grid is reduced (the per-cell
cost ratio is grid-size independent); both schemes solve the *identical*
discrete system (verified to machine precision in the test suite), so the
ratio isolates algorithmic cost exactly as in the paper.  Expect the
measured reduction to land in the several-fold to ~20x band — BLAS dgemm is
a stronger baseline runtime than unvectorized loops, just as Eigen was in
the paper.
"""

import time

import numpy as np
import pytest

from repro.apps import FieldSpec, Species, VlasovMaxwellApp
from repro.grid import Grid

POLY_ORDER = 2
FAMILY = "serendipity"
CONF_CELLS = [4, 4]
VEL_CELLS = [6, 6, 6]


def _make_app(scheme: str) -> VlasovMaxwellApp:
    k = 2 * np.pi / 1.0

    def felc(x, y, vx, vy, vz):
        return (
            (1 + 0.1 * np.cos(k * x) * np.cos(k * y))
            * np.exp(-(vx ** 2 + vy ** 2 + vz ** 2) / 2)
            / (2 * np.pi) ** 1.5
        )

    def fprot(x, y, vx, vy, vz):
        vt2 = 0.25
        return (
            np.exp(-(vx ** 2 + vy ** 2 + vz ** 2) / (2 * vt2))
            / (2 * np.pi * vt2) ** 1.5
        )

    elc = Species("elc", -1.0, 1.0, Grid([-5.0] * 3, [5.0] * 3, VEL_CELLS), felc)
    prot = Species("prot", +1.0, 25.0, Grid([-1.5] * 3, [1.5] * 3, VEL_CELLS), fprot)
    return VlasovMaxwellApp(
        conf_grid=Grid([0.0, 0.0], [1.0, 1.0], CONF_CELLS),
        species=[elc, prot],
        field=FieldSpec(
            initial={"Ex": lambda x, y: 0.01 * np.sin(k * x)},
        ),
        poly_order=POLY_ORDER,
        family=FAMILY,
        scheme=scheme,
        cfl=0.5,
        ic_quad_order=POLY_ORDER + 1,
    )


def _time_steps(app: VlasovMaxwellApp, n_steps: int = 2):
    """Time full SSP-RK3 steps and the Vlasov-solve share separately."""
    dt = app.suggested_dt()
    app.step(dt)  # warm-up (also builds caches)
    t0 = time.perf_counter()
    for _ in range(n_steps):
        app.step(dt)
    per_step = (time.perf_counter() - t0) / n_steps

    # Vlasov share: time the species RHS alone (3 stages worth)
    state = app.state()
    t0 = time.perf_counter()
    for _ in range(3):
        for sp in app.species:
            app.solvers[sp.name].rhs(state[f"f/{sp.name}"], state["em"])
    vlasov_per_step = time.perf_counter() - t0
    return per_step, vlasov_per_step


@pytest.mark.paper
def test_table1_modal_vs_nodal_cost(benchmark):
    modal = _make_app("modal")
    assert modal.solvers["elc"].num_basis == 112  # the paper's 112 DOF/cell
    t_modal, t_modal_vlasov = benchmark.pedantic(
        _time_steps, args=(modal,), iterations=1, rounds=1
    )
    del modal

    nodal = _make_app("quadrature")
    t_nodal, t_nodal_vlasov = _time_steps(nodal)
    del nodal

    total_reduction = t_nodal / t_modal
    vlasov_reduction = t_nodal_vlasov / t_modal_vlasov
    print("\n=== Table I: 2X3V p=2 Serendipity (112 DOF), two species ===")
    print(f"{'':18s} {'nodal':>12s} {'modal':>12s} {'reduction':>10s}")
    print(f"{'total s/step':18s} {t_nodal:12.3f} {t_modal:12.3f} "
          f"{total_reduction:9.1f}x   (paper: 1079.63 / 67.43 = ~16x)")
    print(f"{'Vlasov s/step':18s} {t_nodal_vlasov:12.3f} {t_modal_vlasov:12.3f} "
          f"{vlasov_reduction:9.1f}x   (paper: 1033.89 / 60.34 = ~17x)")
    # shape: modal must win by a sizable factor; Vlasov share dominates both
    assert total_reduction > 3.0
    assert vlasov_reduction > 3.0
    assert t_nodal_vlasov > 0.5 * t_nodal  # Vlasov solve dominates the step


@pytest.mark.paper
def test_table1_modal_step(benchmark):
    app = _make_app("modal")
    dt = app.suggested_dt()
    benchmark.pedantic(app.step, args=(dt,), iterations=1, rounds=3)


@pytest.mark.paper
def test_table1_nodal_step(benchmark):
    app = _make_app("quadrature")
    dt = app.suggested_dt()
    benchmark.pedantic(app.step, args=(dt,), iterations=1, rounds=2)
