"""RHS hot-path micro-benchmark: cell-major engine vs preserved baselines.

Measures the modal Vlasov–Maxwell right-hand side — the kernel the paper's
throughput claims live or die on — through three paths in one process (so
machine drift cancels):

* the current **cell-major** plan-cached engine (:mod:`repro.engine`);
* the PR 2 **mode-major** plan-cached engine preserved in
  :mod:`_modemajor_rhs` (same plan design, phase-major state with
  transform-assign shims and strided face gathers) — the ratio against it
  is the speedup attributable to the layout change alone;
* the seed reference preserved in :mod:`_legacy_rhs` (lazy single-plan
  grouped operators, per-call temporaries, allocating stage outputs).

Results are printed and optionally written as JSON for CI trend tracking.

The engine is additionally measured in both plan-execution modes —
**fused** (AOT-lowered merged-sweep kernels, the default) and
**interpreted** (the per-term reference path) — and the JSON records the
plan-compilation counters of each build (compiles, disk-cache hits/misses,
kernels built/loaded, compile wall seconds), so a CI pair of cold+warm runs
can assert the warm run compiled nothing.

Usage::

    python benchmarks/bench_rhs_hotpath.py                  # weibel config
    python benchmarks/bench_rhs_hotpath.py --config two_stream
    python benchmarks/bench_rhs_hotpath.py --smoke --json bench.json
    python benchmarks/bench_rhs_hotpath.py --require-speedup 2.0
    python benchmarks/bench_rhs_hotpath.py --require-layout-speedup 1.15
    python benchmarks/bench_rhs_hotpath.py --cache /tmp/plans --require-fused-speedup 1.05
    python benchmarks/bench_rhs_hotpath.py --require-obs-overhead 0.02

Not collected by pytest (no ``test_`` functions) — run it as a script.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent))

from _legacy_rhs import LegacyCoupledRhs, LegacyRhs  # noqa: E402
from _modemajor_rhs import ModeMajorCoupledRhs, ModeMajorSolverRhs  # noqa: E402

from repro.engine.layout import (  # noqa: E402
    conf_to_mode_major,
    phase_to_mode_major,
)
from repro.runtime import SimulationSpec, build, build_app  # noqa: E402
from repro.runtime.spec import FieldInitSpec, GridSpec, SpeciesSpec  # noqa: E402


def _two_stream_maxwell_spec(nx: int, nv: int) -> SimulationSpec:
    """The two-stream configuration as a Vlasov–Maxwell run (1X1V)."""
    k = 0.5
    length = 2.0 * math.pi / k
    return SimulationSpec(
        name="two_stream_maxwell",
        model="maxwell",
        conf_grid=GridSpec((0.0,), (length,), (nx,)),
        species=(
            SpeciesSpec(
                name="elc",
                charge=-1.0,
                mass=1.0,
                velocity_grid=GridSpec((-8.0,), (8.0,), (nv,)),
                initial={
                    "kind": "counter_beams",
                    "drift": 2.0,
                    "vt": 0.5,
                    "perturbation": {"amp": 1e-4, "k": k},
                },
            ),
        ),
        field=FieldInitSpec(
            initial={"Ex": {"kind": "sine", "amp": 2e-4, "k": k}}
        ),
        poly_order=2,
        cfl=0.6,
        t_end=1.0,
    )


def _build(config: str, smoke: bool, backend: str, plan_mode: str, cache: str):
    overrides = {"backend": backend, "plan_mode": plan_mode, "plan_cache": cache}
    if config == "weibel":
        nx, nv = (4, 8) if smoke else (6, 14)
        spec = build("weibel_2x2v", nx=nx, nv=nv).with_overrides(overrides)
    elif config == "two_stream":
        nx, nv = (8, 16) if smoke else (24, 48)
        spec = _two_stream_maxwell_spec(nx, nv).with_overrides(overrides)
    else:
        raise SystemExit(f"unknown config {config!r} (weibel, two_stream)")
    return spec, build_app(spec)


def _best(fn, repeats: int, iters: int) -> float:
    """Best-of mean seconds per call (min over repeats averages out noise)."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        for _ in range(iters):
            fn()
        best = min(best, (time.perf_counter() - t0) / iters)
    return best


def _best_pair(fn_a, fn_b, repeats: int, iters: int):
    """Interleaved best-of A/B timing: alternate the two callables within
    each repeat so clock drift and cache warmth hit both equally."""
    best_a = best_b = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        for _ in range(iters):
            fn_a()
        best_a = min(best_a, (time.perf_counter() - t0) / iters)
        t0 = time.perf_counter()
        for _ in range(iters):
            fn_b()
        best_b = min(best_b, (time.perf_counter() - t0) / iters)
    return best_a, best_b


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--config", default="weibel", help="weibel | two_stream")
    ap.add_argument("--smoke", action="store_true", help="tiny sizes / few reps (CI)")
    ap.add_argument("--json", default=None, metavar="PATH", help="write results as JSON")
    ap.add_argument("--backend", default="numpy", help="engine backend to measure")
    ap.add_argument(
        "--cache",
        default="off",
        help="plan disk cache: off (default — measure pure compiles), auto, "
        "or a directory; run twice against the same directory to measure "
        "cold vs warm compilation",
    )
    ap.add_argument("--repeats", type=int, default=None)
    ap.add_argument("--iters", type=int, default=None)
    ap.add_argument(
        "--require-speedup",
        type=float,
        default=None,
        help="exit nonzero unless the coupled-RHS speedup over the seed "
        "reference reaches this factor",
    )
    ap.add_argument(
        "--require-layout-speedup",
        type=float,
        default=None,
        help="exit nonzero unless the coupled-RHS speedup over the "
        "mode-major PR 2 engine reaches this factor",
    )
    ap.add_argument(
        "--require-fused-speedup",
        type=float,
        default=None,
        help="exit nonzero unless the coupled-RHS speedup of the fused "
        "plan mode over the interpreted mode reaches this factor",
    )
    ap.add_argument(
        "--require-obs-overhead",
        type=float,
        default=None,
        metavar="FRAC",
        help="exit nonzero if the observability-off coupled RHS (guarded "
        "wrapper, one flag check) is more than FRAC slower than the "
        "unwrapped body (e.g. 0.02 for 2%%)",
    )
    args = ap.parse_args(argv)

    from repro.cas.codegen import select_tier
    from repro.engine.compile import STATS

    repeats = args.repeats or (2 if args.smoke else 5)
    iters = args.iters or (3 if args.smoke else 8)

    stats0 = STATS.snapshot()
    spec, app = _build(args.config, args.smoke, args.backend, "fused", args.cache)
    name = app.species[0].name
    solver = app.solvers[name]
    cdim = app.conf_grid.ndim
    f, em = app.f[name], app.em
    state = app.state()

    # mode-major copies of the same state for the preserved baselines
    # (conversion happens once here, outside every timed region)
    def to_mm(key, arr):
        if key == "em":
            return conf_to_mode_major(arr, cdim, lead=2)
        return phase_to_mode_major(arr, cdim)

    state_mm = {k: to_mm(k, v) for k, v in state.items()}
    f_mm, em_mm = state_mm[f"f/{name}"], state_mm["em"]

    legacy_solver = LegacyRhs(solver)
    legacy_coupled = LegacyCoupledRhs(app)
    mm_solver = ModeMajorSolverRhs(solver)
    mm_coupled = ModeMajorCoupledRhs(app)
    out = np.zeros_like(f)
    out_mm = np.zeros_like(f_mm)
    out_state = {k: np.empty_like(v) for k, v in state.items()}
    out_state_mm = {k: np.empty_like(v) for k, v in state_mm.items()}

    # correctness gates: all three paths must produce the same RHS
    ref = legacy_solver(f_mm, em_mm)
    got = phase_to_mode_major(solver.rhs(f, em), cdim)
    scale = max(float(np.max(np.abs(ref))), 1.0)
    rhs_err = float(np.max(np.abs(ref - got))) / scale
    if rhs_err > 1e-12:
        print(f"FATAL: engine RHS deviates from seed reference ({rhs_err:.2e})")
        return 1
    mm_err = float(np.max(np.abs(mm_solver(f_mm, em_mm) - ref))) / scale
    if mm_err > 1e-12:
        print(f"FATAL: mode-major baseline deviates from reference ({mm_err:.2e})")
        return 1

    # warm every plan cache before timing
    solver.rhs(f, em, out)
    app.rhs(state, out=out_state)
    mm_solver(f_mm, em_mm, out_mm)
    mm_coupled(state_mm, out_state_mm)
    legacy_coupled(state_mm)
    plans_fused = STATS.delta(STATS.snapshot(), stats0)

    # the interpreted-mode adversary: same spec, per-term reference plans
    stats0 = STATS.snapshot()
    _, app_interp = _build(
        args.config, args.smoke, args.backend, "interpreted", args.cache
    )
    state_interp = app_interp.state()
    out_state_interp = {k: np.empty_like(v) for k, v in state_interp.items()}
    app_interp.rhs(state_interp, out=out_state_interp)
    plans_interp = STATS.delta(STATS.snapshot(), stats0)
    app.rhs(state, out=out_state)
    fused_err = max(
        float(np.max(np.abs(out_state[k] - out_state_interp[k])))
        for k in out_state
    ) / scale
    if fused_err > 2e-15:
        print(f"FATAL: fused mode deviates from interpreted mode ({fused_err:.2e})")
        return 1

    t_solver_new = _best(lambda: solver.rhs(f, em, out), repeats, iters)
    t_solver_mm = _best(lambda: mm_solver(f_mm, em_mm, out_mm), repeats, iters)
    t_solver_old = _best(lambda: legacy_solver(f_mm, em_mm, out_mm), repeats, iters)
    t_app_new = _best(lambda: app.rhs(state, out=out_state), repeats, iters)
    t_app_interp = _best(
        lambda: app_interp.rhs(state_interp, out=out_state_interp), repeats, iters
    )
    t_app_mm = _best(lambda: mm_coupled(state_mm, out_state_mm), repeats, iters)
    t_app_old = _best(lambda: legacy_coupled(state_mm), repeats, iters)
    dt = app.suggested_dt()
    t_step = _best(lambda: app.step(dt), max(repeats - 1, 1), max(iters // 2, 1))

    # observability-off overhead: System.rhs is the guarded wrapper (one
    # module-level flag check), _rhs_impl is the unwrapped body.  Interleaved
    # A/B with obs forced off isolates the cost of the instrumentation seam.
    from repro.obs import OBS

    OBS.configure("off")
    obs_repeats = max(repeats, 3)
    t_rhs_bare, t_rhs_wrapped = _best_pair(
        lambda: app._rhs_impl(state, out=out_state),
        lambda: app.rhs(state, out=out_state),
        obs_repeats,
        iters,
    )
    obs_overhead = t_rhs_wrapped / t_rhs_bare - 1.0

    result = {
        "config": args.config,
        "backend": args.backend,
        "smoke": args.smoke,
        "cells": list(app.phase_grids[name].cells),
        "num_basis": solver.num_basis,
        "layout": "cell-major",
        "rhs_rel_err": rhs_err,
        "modemajor_rel_err": mm_err,
        "solver_rhs_ms": {
            "engine": 1e3 * t_solver_new,
            "modemajor": 1e3 * t_solver_mm,
            "legacy": 1e3 * t_solver_old,
        },
        "solver_rhs_speedup": t_solver_old / t_solver_new,
        "solver_layout_speedup": t_solver_mm / t_solver_new,
        "coupled_rhs_ms": {
            "engine": 1e3 * t_app_new,
            "interpreted": 1e3 * t_app_interp,
            "modemajor": 1e3 * t_app_mm,
            "legacy": 1e3 * t_app_old,
        },
        "coupled_rhs_speedup": t_app_old / t_app_new,
        "coupled_layout_speedup": t_app_mm / t_app_new,
        "fused_speedup": t_app_interp / t_app_new,
        "fused_rel_err": fused_err,
        "kernel_tier": select_tier("auto"),
        "plan_cache": args.cache,
        "plans": {"fused": plans_fused, "interpreted": plans_interp},
        "step_ms": 1e3 * t_step,
        "obs": {
            "bare_rhs_ms": 1e3 * t_rhs_bare,
            "wrapped_rhs_ms": 1e3 * t_rhs_wrapped,
            "off_overhead": obs_overhead,
        },
    }

    print(f"=== RHS hot path — {args.config} "
          f"(cells {result['cells']}, Np={solver.num_basis}, "
          f"backend={args.backend}{', smoke' if args.smoke else ''}) ===")
    print(f"exactness: engine vs seed {rhs_err:.2e} | mode-major vs seed {mm_err:.2e}")
    print(f"solver RHS : engine {1e3*t_solver_new:8.2f} ms | "
          f"mode-major {1e3*t_solver_mm:8.2f} ms | "
          f"legacy {1e3*t_solver_old:8.2f} ms | "
          f"{result['solver_rhs_speedup']:.2f}x vs seed, "
          f"{result['solver_layout_speedup']:.2f}x vs mode-major")
    print(f"coupled RHS: engine {1e3*t_app_new:8.2f} ms | "
          f"mode-major {1e3*t_app_mm:8.2f} ms | "
          f"legacy {1e3*t_app_old:8.2f} ms | "
          f"{result['coupled_rhs_speedup']:.2f}x vs seed, "
          f"{result['coupled_layout_speedup']:.2f}x vs mode-major")
    print(f"fused mode : {1e3*t_app_new:8.2f} ms | "
          f"interpreted {1e3*t_app_interp:8.2f} ms | "
          f"{result['fused_speedup']:.2f}x (tier={result['kernel_tier']}, "
          f"agreement {fused_err:.1e})")
    print(f"plan builds: fused compiled {plans_fused['compiled']} "
          f"hydrated {plans_fused['hydrated']} "
          f"kernels built {plans_fused['kernels_built']} "
          f"loaded {plans_fused['kernels_loaded']} "
          f"({plans_fused['compile_seconds']:.2f}s); "
          f"interpreted compiled {plans_interp['compiled']} "
          f"hydrated {plans_interp['hydrated']} "
          f"({plans_interp['compile_seconds']:.2f}s)")
    print(f"full SSP-RK3 step: {1e3*t_step:.2f} ms")
    print(f"obs off-mode : bare {1e3*t_rhs_bare:8.2f} ms | "
          f"wrapped {1e3*t_rhs_wrapped:8.2f} ms | "
          f"overhead {100.0*obs_overhead:+.2f}%")

    if args.json:
        Path(args.json).write_text(json.dumps(result, indent=2) + "\n")
        print(f"wrote {args.json}")

    rc = 0
    if args.require_speedup is not None:
        if result["coupled_rhs_speedup"] < args.require_speedup:
            print(f"FAIL: speedup {result['coupled_rhs_speedup']:.2f}x "
                  f"< required {args.require_speedup}x")
            rc = 1
        else:
            print(f"OK: speedup >= {args.require_speedup}x")
    if args.require_layout_speedup is not None:
        if result["coupled_layout_speedup"] < args.require_layout_speedup:
            print(f"FAIL: layout speedup {result['coupled_layout_speedup']:.2f}x "
                  f"< required {args.require_layout_speedup}x")
            rc = 1
        else:
            print(f"OK: layout speedup >= {args.require_layout_speedup}x")
    if args.require_fused_speedup is not None:
        if result["fused_speedup"] < args.require_fused_speedup:
            print(f"FAIL: fused speedup {result['fused_speedup']:.2f}x "
                  f"< required {args.require_fused_speedup}x")
            rc = 1
        else:
            print(f"OK: fused speedup >= {args.require_fused_speedup}x")
    if args.require_obs_overhead is not None:
        if obs_overhead > args.require_obs_overhead:
            print(f"FAIL: obs off-mode overhead {100.0*obs_overhead:.2f}% "
                  f"> allowed {100.0*args.require_obs_overhead:.2f}%")
            rc = 1
        else:
            print(f"OK: obs off-mode overhead <= "
                  f"{100.0*args.require_obs_overhead:.2f}%")
    return rc


if __name__ == "__main__":
    raise SystemExit(main())
