"""RHS hot-path micro-benchmark: precompiled-plan engine vs pre-refactor path.

Measures the modal Vlasov–Maxwell right-hand side — the kernel the paper's
throughput claims live or die on — through the plan-cached execution engine
(:mod:`repro.engine`) and through the pre-refactor reference preserved in
:mod:`_legacy_rhs` (lazy single-plan grouped operators, per-call temporaries,
allocating stage outputs).  Both run in the same process back to back, so
machine drift cancels; results are printed and optionally written as JSON
for CI trend tracking.

Usage::

    python benchmarks/bench_rhs_hotpath.py                  # weibel config
    python benchmarks/bench_rhs_hotpath.py --config two_stream
    python benchmarks/bench_rhs_hotpath.py --smoke --json bench.json
    python benchmarks/bench_rhs_hotpath.py --require-speedup 2.0

Not collected by pytest (no ``test_`` functions) — run it as a script.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent))

from _legacy_rhs import LegacyCoupledRhs, LegacyRhs  # noqa: E402

from repro.runtime import SimulationSpec, build, build_app  # noqa: E402
from repro.runtime.spec import FieldInitSpec, GridSpec, SpeciesSpec  # noqa: E402


def _two_stream_maxwell_spec(nx: int, nv: int) -> SimulationSpec:
    """The two-stream configuration as a Vlasov–Maxwell run (1X1V)."""
    k = 0.5
    length = 2.0 * math.pi / k
    return SimulationSpec(
        name="two_stream_maxwell",
        model="maxwell",
        conf_grid=GridSpec((0.0,), (length,), (nx,)),
        species=(
            SpeciesSpec(
                name="elc",
                charge=-1.0,
                mass=1.0,
                velocity_grid=GridSpec((-8.0,), (8.0,), (nv,)),
                initial={
                    "kind": "counter_beams",
                    "drift": 2.0,
                    "vt": 0.5,
                    "perturbation": {"amp": 1e-4, "k": k},
                },
            ),
        ),
        field=FieldInitSpec(
            initial={"Ex": {"kind": "sine", "amp": 2e-4, "k": k}}
        ),
        poly_order=2,
        cfl=0.6,
        t_end=1.0,
    )


def _build(config: str, smoke: bool, backend: str):
    if config == "weibel":
        nx, nv = (4, 8) if smoke else (6, 14)
        spec = build("weibel_2x2v", nx=nx, nv=nv).with_overrides({"backend": backend})
    elif config == "two_stream":
        nx, nv = (8, 16) if smoke else (24, 48)
        spec = _two_stream_maxwell_spec(nx, nv).with_overrides({"backend": backend})
    else:
        raise SystemExit(f"unknown config {config!r} (weibel, two_stream)")
    return spec, build_app(spec)


def _best(fn, repeats: int, iters: int) -> float:
    """Best-of mean seconds per call (min over repeats averages out noise)."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        for _ in range(iters):
            fn()
        best = min(best, (time.perf_counter() - t0) / iters)
    return best


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--config", default="weibel", help="weibel | two_stream")
    ap.add_argument("--smoke", action="store_true", help="tiny sizes / few reps (CI)")
    ap.add_argument("--json", default=None, metavar="PATH", help="write results as JSON")
    ap.add_argument("--backend", default="numpy", help="engine backend to measure")
    ap.add_argument("--repeats", type=int, default=None)
    ap.add_argument("--iters", type=int, default=None)
    ap.add_argument(
        "--require-speedup",
        type=float,
        default=None,
        help="exit nonzero unless the coupled-RHS speedup reaches this factor",
    )
    args = ap.parse_args(argv)

    repeats = args.repeats or (2 if args.smoke else 5)
    iters = args.iters or (3 if args.smoke else 8)

    spec, app = _build(args.config, args.smoke, args.backend)
    name = app.species[0].name
    solver = app.solvers[name]
    f, em = app.f[name], app.em
    state = app.state()

    legacy_solver = LegacyRhs(solver)
    legacy_coupled = LegacyCoupledRhs(app)
    out = np.zeros_like(f)
    out_state = {k: np.empty_like(v) for k, v in state.items()}

    # correctness gate: both paths must produce the same RHS
    ref = legacy_solver(f, em)
    got = solver.rhs(f, em)
    scale = max(float(np.max(np.abs(ref))), 1.0)
    rhs_err = float(np.max(np.abs(ref - got))) / scale
    if rhs_err > 1e-12:
        print(f"FATAL: engine RHS deviates from reference ({rhs_err:.2e})")
        return 1

    # warm every plan cache before timing
    solver.rhs(f, em, out)
    app.rhs(state, out=out_state)
    legacy_coupled(state)

    t_solver_new = _best(lambda: solver.rhs(f, em, out), repeats, iters)
    t_solver_old = _best(lambda: legacy_solver(f, em, out), repeats, iters)
    t_app_new = _best(lambda: app.rhs(state, out=out_state), repeats, iters)
    t_app_old = _best(lambda: legacy_coupled(state), repeats, iters)
    dt = app.suggested_dt()
    t_step = _best(lambda: app.step(dt), max(repeats - 1, 1), max(iters // 2, 1))

    result = {
        "config": args.config,
        "backend": args.backend,
        "smoke": args.smoke,
        "cells": list(app.phase_grids[name].cells),
        "num_basis": solver.num_basis,
        "rhs_rel_err": rhs_err,
        "solver_rhs_ms": {"engine": 1e3 * t_solver_new, "legacy": 1e3 * t_solver_old},
        "solver_rhs_speedup": t_solver_old / t_solver_new,
        "coupled_rhs_ms": {"engine": 1e3 * t_app_new, "legacy": 1e3 * t_app_old},
        "coupled_rhs_speedup": t_app_old / t_app_new,
        "step_ms": 1e3 * t_step,
    }

    print(f"=== RHS hot path — {args.config} "
          f"(cells {result['cells']}, Np={solver.num_basis}, "
          f"backend={args.backend}{', smoke' if args.smoke else ''}) ===")
    print(f"exactness (engine vs legacy): {rhs_err:.2e}")
    print(f"solver RHS : engine {1e3*t_solver_new:8.2f} ms | "
          f"legacy {1e3*t_solver_old:8.2f} ms | {result['solver_rhs_speedup']:.2f}x")
    print(f"coupled RHS: engine {1e3*t_app_new:8.2f} ms | "
          f"legacy {1e3*t_app_old:8.2f} ms | {result['coupled_rhs_speedup']:.2f}x")
    print(f"full SSP-RK3 step: {1e3*t_step:.2f} ms")

    if args.json:
        Path(args.json).write_text(json.dumps(result, indent=2) + "\n")
        print(f"wrote {args.json}")

    if args.require_speedup is not None:
        if result["coupled_rhs_speedup"] < args.require_speedup:
            print(f"FAIL: speedup {result['coupled_rhs_speedup']:.2f}x "
                  f"< required {args.require_speedup}x")
            return 1
        print(f"OK: speedup >= {args.require_speedup}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
