#!/usr/bin/env python
"""Real process-shard scaling: measured RHS/full-step speedup vs serial.

Runs the Weibel 2X2V configuration (the paper's flagship multi-dimensional
benchmark) serially and under ``process:N`` sharding for each requested
shard count, and reports

* RHS-only and full-step wall times + speedups (real concurrent execution,
  not the Fig. 3 analytic model),
* **measured** halo traffic per step (distribution-function and EM bytes,
  counted by the workers as they copy ghost slabs out of shared memory)
  next to the Fig. 3 model's prediction for the same decomposition
  (``ShardPlan.model_halo_doubles``), closing the loop on the paper's
  communication model,
* a bitwise serial-vs-sharded check on the final state (the runs are
  required to agree exactly; any mismatch aborts).

Speedup > 1 needs real cores: on a single-core machine the sharded runs
only add orchestration overhead (the bitwise and byte-accounting checks
remain meaningful).  Usage::

    PYTHONPATH=src python benchmarks/bench_shard_scaling.py             # full
    PYTHONPATH=src python benchmarks/bench_shard_scaling.py --smoke    # CI
    ... --shards 2 4 8 --steps 10 --json shard.json
"""

from __future__ import annotations

import argparse
import json
import os
import time

import numpy as np

from repro.dist import ShardPlan
from repro.runtime import build
from repro.runtime.driver import build_app


def _time_steps(app, dt: float, steps: int) -> float:
    start = time.perf_counter()
    for _ in range(steps):
        app.step(dt)
    return (time.perf_counter() - start) / steps


def _time_rhs(app, reps: int) -> float:
    if hasattr(app, "rhs_pass"):
        app.rhs_pass()  # warm up worker plans
        start = time.perf_counter()
        for _ in range(reps):
            app.rhs_pass()
        return (time.perf_counter() - start) / reps
    state = app.state()
    out = {k: np.empty_like(v) for k, v in state.items()}
    app.rhs(state, out=out)  # warm up compiled plans
    start = time.perf_counter()
    for _ in range(reps):
        app.rhs(state, out=out)
    return (time.perf_counter() - start) / reps


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scenario", default="weibel_2x2v")
    parser.add_argument("--shards", type=int, nargs="+", default=[2, 4])
    parser.add_argument("--steps", type=int, default=6, help="timed full steps")
    parser.add_argument("--rhs-reps", type=int, default=8, help="timed RHS calls")
    parser.add_argument("--nx", type=int, default=12)
    parser.add_argument("--nv", type=int, default=16)
    parser.add_argument("--poly-order", type=int, default=2)
    parser.add_argument("--smoke", action="store_true", help="reduced CI size")
    parser.add_argument("--json", default=None, help="write results to this file")
    parser.add_argument(
        "--require-speedup",
        type=float,
        default=None,
        help="fail unless the best full-step speedup reaches this factor "
        "(leave unset on shared/single-core machines)",
    )
    args = parser.parse_args()
    if args.smoke:
        args.nx, args.nv, args.poly_order = 6, 8, 1
        args.steps, args.rhs_reps = 3, 3
        args.shards = [s for s in args.shards if s <= 4]

    spec = build(
        args.scenario, nx=args.nx, nv=args.nv, poly_order=args.poly_order
    )
    print(
        f"config: {args.scenario} nx={args.nx} nv={args.nv} p={args.poly_order} "
        f"({os.cpu_count()} CPUs)"
    )

    serial = build_app(spec)
    dt = 0.5 * serial.suggested_dt()  # fixed dt so every run does equal work
    t_rhs_serial = _time_rhs(serial, args.rhs_reps)
    t_step_serial = _time_steps(serial, dt, args.steps)
    ref_state = {k: np.array(v) for k, v in serial.state().items()}
    print(
        f"serial         : rhs {1e3 * t_rhs_serial:8.2f} ms   "
        f"step {1e3 * t_step_serial:8.2f} ms"
    )

    results = {
        "config": {
            "scenario": args.scenario, "nx": args.nx, "nv": args.nv,
            "poly_order": args.poly_order, "steps": args.steps,
            "cpus": os.cpu_count(),
        },
        "serial": {"rhs_s": t_rhs_serial, "step_s": t_step_serial},
        "shards": [],
    }
    stages = {"ssp-rk3": 3, "ssp-rk2": 2, "forward-euler": 1}[spec.stepper]
    best = 0.0
    for n in args.shards:
        app = build_app(spec.with_overrides({"backend": f"process:{n}"}))
        try:
            t_rhs = _time_rhs(app, args.rhs_reps)
            base = app.halo_stats["f"]["doubles"]
            t_step = _time_steps(app, dt, args.steps)
            halo = app.halo_stats
            f_doubles_per_step = (halo["f"]["doubles"] - base) / args.steps
            em_doubles_per_step = halo["em"]["doubles"] / (args.rhs_reps + 1 + args.steps * stages) * stages
            # bitwise check: same number of equal-dt steps from the same state
            mismatch = [
                k for k, v in app.state().items()
                if not np.array_equal(ref_state[k], v)
            ]
            if mismatch:
                raise SystemExit(
                    f"FAIL: process:{n} diverged from serial in {mismatch}"
                )
            plan = ShardPlan.create(spec.conf_grid.cells, n)
            nvel = spec.species[0].velocity_grid.cells
            npb = app.solvers[spec.species[0].name].num_basis
            model = plan.model_halo_doubles(npb, nvel) * stages
            su_rhs = t_rhs_serial / t_rhs
            su_step = t_step_serial / t_step
            best = max(best, su_step)
            print(
                f"process:{n:<6d} : rhs {1e3 * t_rhs:8.2f} ms ({su_rhs:4.2f}x)  "
                f"step {1e3 * t_step:8.2f} ms ({su_step:4.2f}x)  "
                f"halo f {8 * f_doubles_per_step / 1e6:7.3f} MB/step "
                f"(model {8 * model / 1e6:7.3f}) em {8 * em_doubles_per_step / 1e6:6.3f} MB/step  "
                f"[bitwise ok]"
            )
            results["shards"].append(
                {
                    "shards": n,
                    "rhs_s": t_rhs,
                    "step_s": t_step,
                    "rhs_speedup": su_rhs,
                    "step_speedup": su_step,
                    "halo_f_doubles_per_step": f_doubles_per_step,
                    "halo_em_doubles_per_step": em_doubles_per_step,
                    "model_f_doubles_per_step": model,
                    "bitwise_equal": True,
                }
            )
        finally:
            app.close()

    if args.json:
        with open(args.json, "w") as fh:
            json.dump(results, fh, indent=2)
        print(f"wrote {args.json}")
    if args.require_speedup is not None and best < args.require_speedup:
        print(
            f"FAIL: best full-step speedup {best:.2f}x "
            f"< required {args.require_speedup:.2f}x"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
