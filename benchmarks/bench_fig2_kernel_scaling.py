"""Fig. 2 — cost scaling of the full per-cell update with DOFs per cell.

The paper measures the time to evaluate the complete update (volume + all
surface kernels) of one phase-space cell as a function of the number of
basis functions N_p, across dimensionalities (1x1v .. 3x3v) and all three
basis families, and finds **sub-quadratic scaling, at worst ~O(N_p^2)** —
crucially, independent of dimensionality (no hidden N_q factor) and robust
to the basis family.

Here the same experiment runs over the generated kernels; the log-log slope
of per-cell time vs N_p is fitted and asserted < 2.3, and the per-DOF
efficiency is printed for the EXPERIMENTS.md record.
"""

import time
from typing import Dict, List, Tuple

import numpy as np
import pytest

from repro.grid import Grid, PhaseGrid
from repro.vlasov import VlasovModalSolver

# (cdim, vdim, p) per family — chosen so kernel generation stays affordable
CONFIGS: Dict[str, List[Tuple[int, int, int]]] = {
    "serendipity": [
        (1, 1, 1), (1, 1, 2), (1, 1, 3),
        (1, 2, 1), (1, 2, 2),
        (2, 2, 1), (2, 2, 2),
        (1, 3, 1), (1, 3, 2),
        (2, 3, 1),
    ],
    "tensor": [(1, 1, 1), (1, 1, 2), (1, 2, 1), (1, 2, 2), (2, 2, 1), (1, 3, 1)],
    "maximal-order": [(1, 1, 1), (1, 1, 2), (1, 2, 2), (2, 2, 2), (1, 3, 2)],
}

_RESULTS: Dict[str, List[Tuple[int, float, float]]] = {}


def _measure(cdim, vdim, p, family, rng, streaming_only=False) -> Tuple[int, float]:
    """Per-cell time of the full (or streaming-only) update.

    Grid sizes are chosen so each measurement covers ~4k phase-space cells:
    enough to amortize fixed NumPy call overheads so the *per-cell* cost —
    the quantity Fig. 2 plots — dominates.
    """
    pdim = cdim + vdim
    n_per_dim = max(2, round(4096 ** (1.0 / pdim)))
    conf = Grid([0.0] * cdim, [1.0] * cdim, [n_per_dim] * cdim)
    n_vel = n_per_dim + (n_per_dim % 2)  # even: no v=0-straddling cells
    vel = Grid([-2.0] * vdim, [2.0] * vdim, [n_vel] * vdim)
    pg = PhaseGrid(conf, vel)
    solver = VlasovModalSolver(pg, p, family)
    f = rng.standard_normal(conf.cells + (solver.num_basis,) + vel.cells)
    em = rng.standard_normal(conf.cells + (8, solver.num_conf_basis))
    out = np.zeros_like(f)

    if streaming_only:
        aux = solver.field_aux(np.zeros_like(em))

        def update():
            out.fill(0.0)
            for ts in solver.kernels.vol_stream:
                ts.apply_cm(f, aux, out, pg.cdim)
            solver._accumulate_streaming_surfaces(f, aux, out)
    else:
        def update():
            solver.rhs(f, em, out)

    update()  # warm up
    n_iter, t0 = 0, time.perf_counter()
    while time.perf_counter() - t0 < 0.25:
        update()
        n_iter += 1
    per_cell = (time.perf_counter() - t0) / (n_iter * pg.num_cells)
    return solver.num_basis, per_cell


@pytest.mark.parametrize("family", list(CONFIGS))
def test_fig2_full_update_subquadratic(benchmark, family, rng):
    """Fitted slope of per-cell update time vs N_p is sub-quadratic-ish
    (paper: 'at worst ~O(N_p^2)')."""

    def sweep():
        pts = []
        for cdim, vdim, p in CONFIGS[family]:
            np_, t_cell = _measure(cdim, vdim, p, family, rng)
            _, t_stream = _measure(cdim, vdim, p, family, rng, streaming_only=True)
            pts.append((np_, t_cell, t_stream))
        return pts

    points = benchmark.pedantic(sweep, iterations=1, rounds=1)
    points.sort()
    _RESULTS[family] = points
    print(f"\n=== Fig. 2 ({family}): per-cell update time vs N_p ===")
    print(f"{'Np':>5s} {'full [us]':>10s} {'stream [us]':>11s} {'DOF/s/core':>12s}")
    for np_, t_cell, t_stream in points:
        print(f"{np_:5d} {t_cell*1e6:10.2f} {t_stream*1e6:11.2f} "
              f"{np_/t_cell:12.3g}")
    xs = np.log([p[0] for p in points])
    ys = np.log([p[1] for p in points])
    slope = np.polyfit(xs, ys, 1)[0]
    print(f"fitted slope: {slope:.2f}  (paper: <= ~2, sub-quadratic)")
    # the cost must grow with Np (work is real) yet stay sub-quadratic-ish,
    # far from the dense-tensor O(Np^3)
    assert 0.3 < slope < 2.3


def test_fig2_scaling_robust_to_family(benchmark, rng):
    """Paper: 'the computational complexity is robust to the basis type' —
    the same N_p costs about the same in any family."""
    def sweep():
        out = dict()
        for fam in ("serendipity", "tensor"):
            for cdim, vdim, p in CONFIGS[fam]:
                np_, t_cell = _measure(cdim, vdim, p, fam, rng)
                out.setdefault((fam, np_), t_cell)
        return out

    t_ser = benchmark.pedantic(sweep, iterations=1, rounds=1)
    # compare overlapping Np=8 points (1x1v p=2 ser? Np=8 / 1x2v p1 tensor Np=8)
    pairs = [
        (t_ser.get(("serendipity", 8)), t_ser.get(("tensor", 8))),
    ]
    for a, b in pairs:
        if a and b:
            assert 0.2 < a / b < 5.0


def test_fig2_surface_cost_dominates(benchmark, rng):
    """Paper footnote 4: the total cost is driven by the surface integrals;
    the volume integral is comparatively cheap."""
    from repro.kernels import get_vlasov_kernels
    from repro.cas.codegen import count_multiplications

    k = benchmark.pedantic(
        get_vlasov_kernels, args=(1, 3, 1, "serendipity"), iterations=1, rounds=1
    )
    vol = sum(count_multiplications(ts) for ts in k.vol_stream + k.vol_accel)
    surf = sum(
        count_multiplications(ts)
        for sides in k.surf_stream + k.surf_accel
        for ts in sides.values()
    )
    print(f"\n1X3V p=1: volume mults {vol}, surface mults {surf}")
    assert surf > 2 * vol


def test_fig2_rhs_timing(benchmark, rng):
    """pytest-benchmark record of a representative full RHS (1x2v p=2)."""
    conf = Grid([0.0], [1.0], [8])
    vel = Grid([-2.0, -2.0], [2.0, 2.0], [8, 8])
    pg = PhaseGrid(conf, vel)
    solver = VlasovModalSolver(pg, 2, "serendipity")
    f = rng.standard_normal(conf.cells + (solver.num_basis,) + vel.cells)
    em = rng.standard_normal(conf.cells + (8, solver.num_conf_basis))
    out = np.zeros_like(f)
    benchmark(solver.rhs, f, em, out)
