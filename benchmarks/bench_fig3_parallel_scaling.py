"""Fig. 3 — weak and strong scaling of the 6D kinetic solver.

The paper scales two-species 6D p=1 Vlasov–Maxwell on Theta:
* weak: base (8,8,8,16,16,16) on 1 node up to (128,128,128,16,16,16) on
  4096 nodes — near-ideal, with at worst ~25% of a step in halo exchange;
* strong: (32,32,32,8,8,8) from 8 to 4096 nodes — ~4x speedup per 8x nodes,
  ~60x total at 512x more nodes;
* the MPI-3 shared-memory velocity decomposition saves 2-3x node memory.

Without a cluster (documented substitution) the curves come from the
calibrated analytic model driven by (a) this machine's *measured* modal
kernel rate and (b) the *real* ghost-layer byte counts of the actual
decomposition; the decomposition logic itself is validated bitwise against
serial runs in the test suite, and here once more with message accounting.
"""

import time

import numpy as np
import pytest

from repro.grid import Grid, PhaseGrid
from repro.parallel import (
    ClusterModel,
    DecomposedVlasovRunner,
    ProblemSpec,
    memory_report,
    strong_scaling_series,
    weak_scaling_series,
)
from repro.vlasov import VlasovModalSolver

WEAK_NODES = [1, 8, 64, 512, 4096]
STRONG_NODES = [8, 64, 512, 4096]


@pytest.fixture(scope="module")
def measured_rate(rng):
    """Single-core cell-update rate of the real 6D p=1 modal kernels."""
    conf = Grid([0.0] * 3, [1.0] * 3, [2, 2, 2])
    vel = Grid([-2.0] * 3, [2.0] * 3, [4, 4, 4])
    pg = PhaseGrid(conf, vel)
    solver = VlasovModalSolver(pg, 1, "serendipity")
    f = rng.standard_normal(conf.cells + (solver.num_basis,) + vel.cells)
    em = rng.standard_normal(conf.cells + (8, solver.num_conf_basis))
    out = np.zeros_like(f)
    solver.rhs(f, em, out)
    n, t0 = 0, time.perf_counter()
    while time.perf_counter() - t0 < 1.0:
        solver.rhs(f, em, out)
        n += 1
    rate = n * pg.num_cells / (time.perf_counter() - t0)
    return rate, solver


# KNL-equivalent core rate derived from the paper's own efficiency metric:
# 1.67e7 DOFs/s/core at 112 DOF/cell => ~1.5e5 cell updates/s/core.
PAPER_CORE_RATE = 1.67e7 / 112


@pytest.mark.paper
def test_fig3_weak_scaling(benchmark, measured_rate):
    rate, solver = measured_rate
    base = ProblemSpec((8, 8, 8), (16, 16, 16), num_basis=solver.num_basis)

    def both_series():
        ours = weak_scaling_series(
            ClusterModel(cell_updates_per_second_core=rate), base, WEAK_NODES
        )
        knl = weak_scaling_series(
            ClusterModel(cell_updates_per_second_core=PAPER_CORE_RATE),
            base, WEAK_NODES,
        )
        return ours, knl

    ours, knl = benchmark.pedantic(both_series, iterations=1, rounds=1)
    print("\n=== Fig. 3 (left): weak scaling, 6D p=1 Np=64, two species ===")
    print("(measured-rate nodes = this machine's NumPy kernels; KNL-rate = "
          "core speed implied by the paper's 1.67e7 DOFs/s/core)")
    print(f"{'nodes':>6s} {'norm (ours)':>12s} {'halo (ours)':>11s} "
          f"{'norm (KNL)':>11s} {'halo (KNL)':>11s}   paper: <=25% halo at 4096")
    for a, b in zip(ours, knl):
        print(f"{a['nodes']:6d} {a['normalized']:12.2f} {a['halo_fraction']:11.0%} "
              f"{b['normalized']:11.2f} {b['halo_fraction']:11.0%}")
    assert ours[-1]["normalized"] < 1.8
    # at compiled-kernel speed, the paper's <=25% halo share appears
    assert 0.10 < knl[-1]["halo_fraction"] < 0.35


@pytest.mark.paper
def test_fig3_strong_scaling(benchmark, measured_rate):
    rate, solver = measured_rate
    model = ClusterModel(cell_updates_per_second_core=rate)
    problem = ProblemSpec((32, 32, 32), (8, 8, 8), num_basis=solver.num_basis)
    series = benchmark.pedantic(
        strong_scaling_series, args=(model, problem, STRONG_NODES),
        iterations=1, rounds=1,
    )
    print("\n=== Fig. 3 (right): strong scaling, 6D p=1 ===")
    print(f"{'nodes':>6s} {'speedup':>8s} {'ideal':>6s} {'halo':>6s}   paper: ~60x at 512x nodes")
    for rec in series:
        print(f"{rec['nodes']:6d} {rec['speedup']:8.1f} {rec['ideal_speedup']:6.0f} "
              f"{rec['halo_fraction']:6.0%}")
    final = series[-1]["speedup"]
    assert 30 < final < 120  # the paper's ~60x, with model slack


@pytest.mark.paper
def test_fig3_memory_saving(benchmark):
    rep = benchmark.pedantic(
        memory_report,
        kwargs=dict(
            conf_cells=(64, 64, 64), vel_cells=(16, 16, 16),
            nodes=64, cores_per_node=64, num_basis=64, num_species=2,
        ),
        iterations=1, rounds=1,
    )
    print("\n=== Sec. IV: shared-memory node-memory saving ===")
    print(f"shared: {rep['shared_node_bytes']/2**30:.1f} GiB/node, "
          f"pure-MPI: {rep['pure_mpi_node_bytes']/2**30:.1f} GiB/node, "
          f"saving {rep['saving_factor']:.2f}x (paper: 2-3x)")
    assert 1.8 <= rep["saving_factor"] <= 3.5


@pytest.mark.paper
def test_fig3_decomposed_step(benchmark, rng):
    """Time one decomposed RHS (real halo exchange) and account messages."""
    conf = Grid([0.0] * 2, [1.0] * 2, [4, 4])
    vel = Grid([-2.0] * 2, [2.0] * 2, [4, 4])
    pg = PhaseGrid(conf, vel)
    solver = VlasovModalSolver(pg, 1, "serendipity")
    f = rng.standard_normal(conf.cells + (solver.num_basis,) + vel.cells)
    em = rng.standard_normal(conf.cells + (8, solver.num_conf_basis))
    runner = DecomposedVlasovRunner(solver, nodes=4, cores_per_node=2)
    serial = solver.rhs(f, em)
    dist = benchmark(runner.rhs, f, em)
    assert np.max(np.abs(dist - serial)) / np.max(np.abs(serial)) < 1e-13
