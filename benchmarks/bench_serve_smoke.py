"""Serving-layer smoke benchmark: submit latency, time-to-first-result,
and the dedup cache-hit latency of a live ``repro.serve`` daemon.

Starts an in-process :class:`~repro.serve.ServeDaemon` (real HTTP, real
worker processes) over a scratch store, then measures over the wire:

- ``submit_ms``       — POST /jobs round-trip for a new spec;
- ``ttfr_ms``         — submit until GET /jobs/<id>/result returns the
  finished summary (includes the simulation itself);
- ``cached_hit_ms``   — resubmit + result fetch of the identical spec:
  the serving layer's whole point, served with zero compute;
- ``stream_ok``       — the streamed diagnostics body is byte-identical
  to the on-disk ``diagnostics.jsonl`` (hard gate);
- ``drain_clean``     — SIGTERM-equivalent drain exits with every worker
  joined (hard gate).

The cached hit must also answer much faster than the compute path; the
default gate (``--max-cached-ratio``) only asserts it is not *slower*
than the first run, which even a loaded shared runner clears.

Usage::

    PYTHONPATH=src python benchmarks/bench_serve_smoke.py --smoke --json serve-smoke.json
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

from repro.runtime.scenarios import build
from repro.serve import ServeClient, ServeDaemon


def run(args: argparse.Namespace) -> dict:
    overrides = (
        dict(steps=3, nx=6, nv=6, poly_order=1)
        if args.smoke
        else dict(steps=50, nx=32, nv=32, poly_order=2)
    )
    spec = build("free_streaming", **overrides)
    with tempfile.TemporaryDirectory(prefix="repro-serve-bench-") as root:
        daemon = ServeDaemon(root, workers=args.workers, poll=0.02)
        daemon.start()
        try:
            client = ServeClient.from_dir(root)

            t0 = time.perf_counter()
            first = client.submit(spec=spec)
            submit_ms = (time.perf_counter() - t0) * 1e3
            assert first["compute"] == "scheduled", first

            result = client.result(first["job"], wait=True, timeout=600.0)
            ttfr_ms = (time.perf_counter() - t0) * 1e3

            t1 = time.perf_counter()
            second = client.submit(spec=spec)
            client.result(second["job"], wait=False)
            cached_hit_ms = (time.perf_counter() - t1) * 1e3
            assert second["compute"] == "cached", second
            assert second["job"] == first["job"]

            streamed = b"".join(client.stream_diagnostics(first["job"]))
            on_disk = daemon.store.diagnostics_path(first["job"]).read_bytes()
            stream_ok = streamed == on_disk and len(on_disk) > 0

            snap = client.metrics()["metrics"]
        finally:
            drain_clean = daemon.drain(timeout=120.0)

    return {
        "config": overrides,
        "workers": args.workers,
        "steps_run": result["steps"],
        "submit_ms": round(submit_ms, 3),
        "ttfr_ms": round(ttfr_ms, 3),
        "cached_hit_ms": round(cached_hit_ms, 3),
        "cached_speedup": round(ttfr_ms / max(cached_hit_ms, 1e-9), 2),
        "stream_ok": stream_ok,
        "drain_clean": drain_clean,
        "jobs_submitted": snap["jobs_submitted"],
        "jobs_deduped": snap["jobs_deduped"],
        "jobs_completed": snap["jobs_completed"],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="tiny config for CI")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--json", type=Path, help="write results to this file")
    parser.add_argument(
        "--max-cached-ratio",
        type=float,
        default=1.0,
        help="fail when cached_hit_ms exceeds this fraction of ttfr_ms",
    )
    args = parser.parse_args(argv)

    results = run(args)
    print(json.dumps(results, indent=2))
    if args.json:
        args.json.write_text(json.dumps(results, indent=2))

    failures = []
    if not results["stream_ok"]:
        failures.append("streamed diagnostics differ from the on-disk file")
    if not results["drain_clean"]:
        failures.append("drain did not join every worker")
    if results["jobs_deduped"] < 1.0:
        failures.append("resubmission was not deduplicated")
    if results["cached_hit_ms"] > args.max_cached_ratio * results["ttfr_ms"]:
        failures.append(
            f"cached hit ({results['cached_hit_ms']:.1f} ms) slower than "
            f"{args.max_cached_ratio:g}x first result ({results['ttfr_ms']:.1f} ms)"
        )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
