"""Ablation — recovery DG vs two-pass LDG for diffusion (paper Sec. VI).

The paper's concluding section argues recovery-based DG can buy large
resolution savings in 5D/6D by raising the convergence order (e.g. 4th
order from p=1).  This ablation quantifies that on the 1-D heat equation:
accuracy at matched resolution, convergence order, and cost per RHS for the
recovery operator vs the two-pass LDG scheme used inside the LBO collision
operator.
"""

import numpy as np
import pytest

from repro.basis.modal import ModalBasis
from repro.cas.poly import Poly
from repro.grid import Grid
from repro.kernels.generator import FluxSpec, FluxTerm, generate_surface_termsets, generate_volume_termset
from repro.projection import project_on_grid
from repro.recovery import RecoveryDiffusion1D
from repro.timestepping import SSPRK3


class LDGDiffusion1D:
    """Two-pass LDG second derivative on a 1-D periodic grid (the scheme the
    LBO operator uses), packaged for the head-to-head comparison."""

    def __init__(self, grid: Grid, poly_order: int):
        self.grid = grid
        self.p = poly_order
        # reuse the kinetic machinery on a pseudo phase-grid with 1 config cell
        basis = ModalBasis(1, poly_order, "serendipity")
        spec = FluxSpec(dim=0, terms=(FluxTerm(sym=(), poly=Poly.one(1)),))
        self.vol = generate_volume_termset(basis, spec)
        self.surf = generate_surface_termsets(basis, spec)
        self.aux = {"rdx0": 2.0 / grid.dx[0]}

    def _advect(self, u, weights):
        out = np.zeros_like(u)
        self.vol.apply(u, self.aux, out)
        w_l, w_r = weights
        u_left = u * w_l
        u_right = np.roll(u, -1, axis=1) * w_r
        self.surf[("L", "L")].apply(u_left, self.aux, out)
        self.surf[("L", "R")].apply(u_right, self.aux, out)
        buf = np.zeros_like(u)
        self.surf[("R", "L")].apply(u_left, self.aux, buf)
        self.surf[("R", "R")].apply(u_right, self.aux, buf)
        out += np.roll(buf, 1, axis=1)
        return out

    def rhs(self, u, out=None):
        grad = -self._advect(u, (0.0, 1.0))
        lap = -self._advect(grad, (1.0, 0.0))
        if out is None:
            return lap
        out[...] = lap
        return out

    def max_frequency(self):
        h = self.grid.dx[0]
        return (2 * self.p + 1) ** 2 / h ** 2 * 2.0


def _heat_error(op_cls, nx, p, t_end=0.02):
    grid = Grid([0.0], [1.0], [nx])
    basis = ModalBasis(1, p, "serendipity")
    op = op_cls(grid, p)
    u = project_on_grid(lambda x: np.sin(2 * np.pi * x), grid, basis, quad_order=p + 4)
    stepper = SSPRK3()
    dt = 0.1 / op.max_frequency() * (8.0 / nx) ** 0.5
    t = 0.0
    while t < t_end - 1e-14:
        step = min(dt, t_end - t)
        u = stepper.step({"u": u}, lambda s: {"u": op.rhs(s["u"])}, step)["u"]
        t += step
    decay = np.exp(-4 * np.pi ** 2 * t_end)
    exact = project_on_grid(
        lambda x: decay * np.sin(2 * np.pi * x), grid, basis, quad_order=p + 4
    )
    return float(np.sqrt(np.sum((u - exact) ** 2) * 0.5 * grid.dx[0]))


@pytest.mark.paper
def test_ablation_recovery_vs_ldg_accuracy(benchmark):
    """Recovery reaches ~order 2p+2; LDG ~p+1-ish — at matched grids the
    recovery error is far smaller (the Sec. VI resolution-savings claim)."""

    def sweep():
        rows = []
        for nx in (4, 8, 16):
            rows.append(
                (nx, _heat_error(RecoveryDiffusion1D, nx, 1),
                 _heat_error(LDGDiffusion1D, nx, 1))
            )
        return rows

    rows = benchmark.pedantic(sweep, iterations=1, rounds=1)
    print("\n=== Ablation: p=1 diffusion, recovery vs two-pass LDG ===")
    print(f"{'nx':>4s} {'recovery err':>14s} {'LDG err':>14s} {'gain':>8s}")
    for nx, e_rec, e_ldg in rows:
        print(f"{nx:4d} {e_rec:14.3e} {e_ldg:14.3e} {e_ldg/e_rec:8.1f}x")
    rec_rate = np.log2(rows[0][1] / rows[-1][1]) / 2
    ldg_rate = np.log2(rows[0][2] / rows[-1][2]) / 2
    print(f"orders: recovery {rec_rate:.2f} (paper: ~4 from p=1), LDG {ldg_rate:.2f}")
    assert rec_rate > 3.2
    assert rows[-1][1] < 0.2 * rows[-1][2]


@pytest.mark.paper
def test_ablation_recovery_rhs_cost(benchmark):
    grid = Grid([0.0], [1.0], [64])
    op = RecoveryDiffusion1D(grid, 1)
    rng = np.random.default_rng(0)
    u = rng.standard_normal((2, 64))
    benchmark(op.rhs, u)


@pytest.mark.paper
def test_ablation_ldg_rhs_cost(benchmark):
    grid = Grid([0.0], [1.0], [64])
    op = LDGDiffusion1D(grid, 1)
    rng = np.random.default_rng(0)
    u = rng.standard_normal((2, 64))
    benchmark(op.rhs, u)
