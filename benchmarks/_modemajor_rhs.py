"""PR 2 mode-major engine path, preserved for the layout benchmark.

This module freezes the *plan-cached, mode-major* execution path exactly as
it stood before the cell-major state refactor: states are
``(num_basis, *cfg_cells, *vel_cells)``, the configuration-batched dense
products compute in cell-major scratch and transform-assign back into the
phase-major output (the shim the refactor deleted), the acceleration
surfaces gather strided face slices, and the EM state is
``(8, Npc, *cfg_cells)``.  ``bench_rhs_hotpath.py`` measures the current
cell-major engine against it in the same process, which isolates the
speedup attributable to the layout change alone (both paths share the plan
cache design, scratch pooling, and kernel coefficients).

Not imported by the library — benchmark-only code.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.engine.backend import get_backend
from repro.engine.plan import aux_signature
from repro.engine.pool import ScratchPool
from repro.kernels.termset import AuxValue, Symbol, TermSet, merge_termsets, stack_termsets

try:
    from scipy.sparse import _sparsetools as _csr_tools
except ImportError:  # pragma: no cover
    _csr_tools = None


def _axis_slice(ndim: int, axis: int, sl: slice):
    out = [slice(None)] * ndim
    out[axis] = sl
    return tuple(out)


def _scalar_value(val: AuxValue) -> float:
    if type(val) is float or np.isscalar(val):
        return float(val)
    arr = np.asarray(val)
    return float(arr.reshape(-1)[0])


def _csr_accumulate(mat, data, x2, y2):
    if _csr_tools is not None:
        _csr_tools.csr_matvecs(
            mat.shape[0], mat.shape[1], x2.shape[1],
            mat.indptr, mat.indices, data, x2.reshape(-1), y2.reshape(-1),
        )
    else:  # pragma: no cover
        y2 += sp.csr_matrix((data, mat.indices, mat.indptr), shape=mat.shape) @ x2


class _UniformGroup:
    __slots__ = ("vel_names", "terms")

    def __init__(self, vel_names):
        self.vel_names = vel_names
        self.terms = []


class _CfgGroup:
    __slots__ = ("vel_names", "items", "mats", "hat")

    def __init__(self, vel_names):
        self.vel_names = vel_names
        self.items = []
        self.mats = None
        self.hat = None


class ModeMajorPlan:
    """The PR 2 ``ExecutionPlan``: compiled per (aux signature, cell shape),
    applied to phase-major states with a cell-major-scratch transform-assign
    for the configuration-batched part."""

    def __init__(self, termset, cdim, vdim, aux, cell_shape, backend=None, pool=None):
        self.termset = termset
        self.cdim = int(cdim)
        self.vdim = int(vdim)
        self.nout = termset.nout
        self.nin = termset.nin
        self.cell_shape = tuple(cell_shape)
        self.cfg_shape = self.cell_shape[: self.cdim]
        self.vel_shape = self.cell_shape[self.cdim :]
        self.ncfg = int(np.prod(self.cfg_shape)) if self.cfg_shape else 1
        self.nvel = int(np.prod(self.vel_shape)) if self.vel_shape else 1
        self.ncells = self.ncfg * self.nvel
        self.backend = get_backend(backend)
        self.pool = pool if pool is not None else ScratchPool()
        self.names = sorted({n for sym in termset.entries_by_symbol() for n in sym})
        self.signature = aux_signature(self.names, aux, self.cdim, self.vdim)
        self._compile(dict(self.signature))

    # ------------------------------------------------------------------ #
    def _compile(self, tokens):
        uniform: Dict[Tuple[str, ...], _UniformGroup] = {}
        cfg_groups: Dict[Tuple[str, ...], _CfgGroup] = {}
        cfg_mats: Dict[Tuple[str, ...], List[np.ndarray]] = {}
        fallback: Dict[Symbol, list] = {}
        for sym, triples in self.termset.entries_by_symbol().items():
            scalar_names, cfg_names, vel_names = [], [], []
            irregular = False
            for name in sym:
                tok = tokens[name]
                if tok == "x":
                    irregular = True
                    break
                (scalar_names if tok == "s" else cfg_names if tok == "c" else vel_names).append(name)
            if irregular:
                fallback[sym] = triples
                continue
            key = tuple(sorted(vel_names))
            rows = np.array([t[0] for t in triples], dtype=np.int64)
            cols = np.array([t[1] for t in triples], dtype=np.int64)
            vals = np.array([t[2] for t in triples], dtype=float)
            mat = sp.csr_matrix((vals, (rows, cols)), shape=(self.nout, self.nin))
            if cfg_names:
                grp = cfg_groups.get(key)
                if grp is None:
                    grp = cfg_groups[key] = _CfgGroup(key)
                    cfg_mats[key] = []
                grp.items.append((tuple(scalar_names), tuple(cfg_names)))
                cfg_mats[key].append(mat.toarray().reshape(-1))
            else:
                grp = uniform.get(key)
                if grp is None:
                    grp = uniform[key] = _UniformGroup(key)
                grp.terms.append((tuple(scalar_names), mat, np.empty_like(mat.data)))
        for key, grp in cfg_groups.items():
            grp.mats = np.stack(cfg_mats[key]) if cfg_mats[key] else None
        self._uniform = list(uniform.values())
        self._cfg = [g for g in cfg_groups.values() if g.mats is not None]
        self._fallback = TermSet(self.nout, self.nin, fallback) if fallback else None
        self._factorize_cfg()

    def _factorize_cfg(self):
        self._fact = None
        if not self._cfg:
            return
        K = np.concatenate(
            [g.mats.reshape(len(g.items), self.nout, self.nin) for g in self._cfg]
        )
        _, s_in, vt = np.linalg.svd(K.reshape(-1, self.nin), full_matrices=False)
        _, s_out, wt = np.linalg.svd(
            np.swapaxes(K, 1, 2).reshape(-1, self.nout), full_matrices=False
        )
        if s_in.size == 0 or s_in[0] == 0.0:
            return
        r_in = int(np.sum(s_in > s_in[0] * 1e-10))
        r_out = int(np.sum(s_out > s_out[0] * 1e-10))
        ngroups = len(self._cfg)
        direct = ngroups * self.nout * self.nin
        factored = r_in * self.nin + ngroups * r_out * r_in + self.nout * r_out
        if factored >= 0.85 * direct:
            return
        vt = np.ascontiguousarray(vt[:r_in])
        u = np.ascontiguousarray(wt[:r_out].T)
        hat = np.matmul(np.matmul(u.T, K), vt.T)
        recon = np.matmul(np.matmul(u, hat), vt)
        scale = np.max(np.abs(K)) or 1.0
        if np.max(np.abs(recon - K)) > 1e-12 * scale:  # pragma: no cover
            return
        start = 0
        for grp in self._cfg:
            n = len(grp.items)
            grp.hat = hat[start : start + n].reshape(n, r_out * r_in).copy()
            grp.mats = None
            start += n
        self._fact = (u, vt, r_out, r_in)

    # ------------------------------------------------------------------ #
    def _vel_product(self, names, aux):
        val = np.asarray(aux[names[0]])
        for name in names[1:]:
            val = val * np.asarray(aux[name])
        return val

    def _cfg_row(self, val):
        arr = np.asarray(val)
        if arr.shape[: self.cdim] == self.cfg_shape:
            return arr.reshape(self.ncfg)
        return np.broadcast_to(arr, self.cfg_shape + (1,) * self.vdim).reshape(self.ncfg)

    # ------------------------------------------------------------------ #
    def apply(self, fin, aux, out, accumulate=True):
        if fin.shape[1:] != self.cell_shape:
            raise ValueError(
                f"plan compiled for cells {self.cell_shape}, got {fin.shape[1:]}"
            )
        pool = self.pool
        if self._cfg:
            self._apply_cfg(fin, aux, out, assign=not accumulate)
        elif not accumulate:
            out.fill(0.0)
        if not fin.flags.c_contiguous and (self._uniform or self._fallback):
            fcontig = pool.get("mm.fcontig", fin.shape)
            np.copyto(fcontig, fin)
            fin = fcontig
        out2 = out.reshape(self.nout, self.ncells)
        for grp in self._uniform:
            if grp.vel_names:
                velfac = np.broadcast_to(
                    self._vel_product(grp.vel_names, aux), (1,) + self.cell_shape
                )
                g = pool.get("mm.g", (self.nin,) + self.cell_shape)
                np.multiply(fin, velfac, out=g)
                x2 = g.reshape(self.nin, self.ncells)
            else:
                x2 = fin.reshape(self.nin, self.ncells)
            for scalar_names, mat, dbuf in grp.terms:
                c = 1.0
                for name in scalar_names:
                    c *= _scalar_value(aux[name])
                np.multiply(mat.data, c, out=dbuf)
                _csr_accumulate(mat, dbuf, x2, out2)
        if self._fallback is not None:
            self._fallback.apply(fin, aux, out)
        return out

    def _apply_cfg(self, fin, aux, out, assign):
        """The transform-assign shim: compute cell-major, move back."""
        pool = self.pool
        out3 = out.reshape(self.nout, self.ncfg, self.nvel)
        outc = pool.get("mm.outc", (self.ncfg, self.nout, self.nvel))
        self._apply_cfg_into(fin, aux, outc, accumulate=False)
        outc_t = outc.transpose(1, 0, 2)
        if assign:
            np.copyto(out3, outc_t)
        else:
            out3 += outc_t

    def apply_cellmajor(self, fin, aux, outc, accumulate=True):
        if self._uniform or self._fallback is not None:
            raise ValueError("cell-major application requires a pure cfg plan")
        if not self._cfg:
            if not accumulate:
                outc.fill(0.0)
            return outc
        self._apply_cfg_into(fin, aux, outc, accumulate=accumulate)
        return outc

    def _apply_cfg_into(self, fin, aux, outc, accumulate):
        pool, backend = self.pool, self.backend
        fc = pool.get("mm.fc", (self.ncfg, self.nin, self.nvel))
        fcv = fc.reshape(self.cfg_shape + (self.nin,) + self.vel_shape)
        np.copyto(fcv, np.moveaxis(fin, 0, self.cdim))
        if self._fact is not None:
            u, vt, r_out, r_in = self._fact
            gt = pool.get("mm.gt", (self.ncfg, r_in, self.nvel))
            backend.batched_gemm(vt, fc, out=gt)
            acc = pool.get("mm.outhat", (self.ncfg, r_out, self.nvel))
            mm = pool.get("mm.mmhat", (self.ncfg, r_out, self.nvel))
            work, rows, cols = gt, r_out, r_in
            acc_assigned = False
        else:
            acc = outc
            mm = pool.get("mm.mm", (self.ncfg, self.nout, self.nvel))
            work, rows, cols = fc, self.nout, self.nin
            acc_assigned = accumulate
        for igrp, grp in enumerate(self._cfg):
            n_items = len(grp.items)
            coef = pool.get("mm.coef", (n_items, self.ncfg))
            for i, (scalar_names, cfg_names) in enumerate(grp.items):
                c = 1.0
                for name in scalar_names:
                    c *= _scalar_value(aux[name])
                np.multiply(self._cfg_row(aux[cfg_names[0]]), c, out=coef[i])
                for name in cfg_names[1:]:
                    coef[i] *= self._cfg_row(aux[name])
            amat = pool.get("mm.amat", (self.ncfg, rows * cols))
            backend.gemm(coef.T, grp.hat if self._fact is not None else grp.mats, out=amat)
            a3 = amat.reshape(self.ncfg, rows, cols)
            if grp.vel_names:
                vprod = self._vel_product(grp.vel_names, aux)
                velfac = np.broadcast_to(
                    vprod.reshape(vprod.shape[self.cdim :]), self.vel_shape
                ).reshape(1, 1, self.nvel)
                gc = pool.get("mm.gc", (self.ncfg, cols, self.nvel))
                np.multiply(work, velfac, out=gc)
            else:
                gc = work
            if igrp == 0 and not acc_assigned:
                backend.batched_gemm(a3, gc, out=acc)
            else:
                backend.batched_gemm(a3, gc, out=mm)
                acc += mm
        if self._fact is not None:
            if accumulate:
                lift = pool.get("mm.lift", (self.ncfg, self.nout, self.nvel))
                backend.batched_gemm(u, acc, out=lift)
                outc += lift
            else:
                backend.batched_gemm(u, acc, out=outc)

    @property
    def is_pure_cfg(self):
        return not self._uniform and self._fallback is None


class ModeMajorGrouped:
    """PR 2 ``GroupedOperator``: plan cache keyed on (cell shape, signature)
    with the value-identity fast path."""

    def __init__(self, termset, cdim, vdim, backend=None, pool=None):
        self.termset = termset
        self.cdim = int(cdim)
        self.vdim = int(vdim)
        self.backend = get_backend(backend)
        self.pool = pool if pool is not None else ScratchPool()
        self._names = sorted({n for sym in termset.entries_by_symbol() for n in sym})
        self._plans = {}
        self._fast_vals = None
        self._fast_shape = None
        self._fast_plan = None

    def plan_fast(self, aux, cell_shape):
        try:
            vals = [aux[n] for n in self._names]
        except KeyError:
            vals = None
        fast = self._fast_vals
        if (
            vals is not None
            and fast is not None
            and cell_shape == self._fast_shape
            and all(a is b for a, b in zip(vals, fast))
        ):
            return self._fast_plan
        sig = aux_signature(self._names, aux, self.cdim, self.vdim)
        key = (tuple(cell_shape), sig)
        plan = self._plans.get(key)
        if plan is None:
            plan = ModeMajorPlan(
                self.termset, self.cdim, self.vdim, aux, cell_shape,
                backend=self.backend, pool=self.pool,
            )
            self._plans[key] = plan
        self._fast_vals = vals
        self._fast_shape = cell_shape
        self._fast_plan = plan
        return plan

    def apply(self, fin, aux, out, accumulate=True):
        return self.plan_fast(aux, fin.shape[1:]).apply(fin, aux, out, accumulate=accumulate)

    def apply_cellmajor(self, fin, aux, outc, accumulate=True):
        return self.plan_fast(aux, fin.shape[1:]).apply_cellmajor(
            fin, aux, outc, accumulate=accumulate
        )


# --------------------------------------------------------------------- #
def _roll_mul(src, shift, axis, weight, out):
    n = src.shape[axis]
    shift %= n
    if shift == 0:
        np.multiply(src, weight, out=out)
        return out
    dst_head = _axis_slice(src.ndim, axis, slice(0, shift))
    dst_tail = _axis_slice(src.ndim, axis, slice(shift, n))
    src_head = _axis_slice(src.ndim, axis, slice(n - shift, n))
    src_tail = _axis_slice(src.ndim, axis, slice(0, n - shift))
    np.multiply(src[src_head], weight, out=out[dst_head])
    np.multiply(src[src_tail], weight, out=out[dst_tail])
    return out


def _add_rolled(src, shift, axis, out):
    n = src.shape[axis]
    shift %= n
    if shift == 0:
        out += src
        return out
    out[_axis_slice(src.ndim, axis, slice(0, shift))] += src[
        _axis_slice(src.ndim, axis, slice(n - shift, n))
    ]
    out[_axis_slice(src.ndim, axis, slice(shift, n))] += src[
        _axis_slice(src.ndim, axis, slice(0, n - shift))
    ]
    return out


class ModeMajorSolverRhs:
    """The PR 2 modal-solver RHS driver: phase-major state, merged volume
    operator, rolled streaming surfaces, cell-major-carry acceleration
    surfaces with strided face gathers."""

    def __init__(self, solver):
        # ``solver`` is a current (cell-major) VlasovModalSolver; only its
        # generated kernels, grid, and physical constants are reused here.
        self.solver = solver
        self.grid = solver.grid
        g = solver.grid
        cdim, vdim = g.cdim, g.vdim
        self.cdim, self.vdim = cdim, vdim
        self.num_basis = solver.num_basis
        self.num_conf_basis = solver.num_conf_basis
        self.pool = ScratchPool()
        self.backend = get_backend("numpy")
        self._base_aux = g.base_aux()
        self._base_aux["qm"] = solver.charge / solver.mass
        self._aux = dict(self._base_aux)
        self._aux_src = None
        self._upwind_pos = []
        for j in range(cdim):
            w = g.velocity_center_array(j)
            self._upwind_pos.append(np.where(w > 0, 1.0, np.where(w < 0, 0.0, 0.5)))

        def _op(ts):
            return ModeMajorGrouped(ts, cdim, vdim, backend=self.backend, pool=self.pool)

        k = solver.kernels
        self._vol_op = _op(merge_termsets(k.vol_stream + k.vol_accel))
        self._surf_stream_ops = [
            {side: _op(ts) for side, ts in sides.items()} for sides in k.surf_stream
        ]
        self._surf_accel_ops = [
            {
                "L": _op(stack_termsets(
                    [sides[("L", "L")].scaled(0.5), sides[("R", "L")].scaled(0.5)]
                )),
                "R": _op(stack_termsets(
                    [sides[("L", "R")].scaled(0.5), sides[("R", "R")].scaled(0.5)]
                )),
            }
            for sides in k.surf_accel
        ]

    def field_aux(self, em):
        aux = self._aux
        if em is self._aux_src:
            return aux
        g = self.grid
        npc = self.num_conf_basis
        for comp in range(3):
            for k in range(npc):
                aux[f"E{comp}_{k}"] = g.conf_coefficient_array(em[comp, k])
                aux[f"B{comp}_{k}"] = g.conf_coefficient_array(em[3 + comp, k])
        self._aux_src = em
        return aux

    def __call__(self, f, em, out=None):
        g = self.grid
        if out is None:
            out = np.empty_like(f)
        aux = self.field_aux(em)
        self._vol_op.apply(f, aux, out, accumulate=False)
        f_left = self.pool.get("mmsolver.fl", f.shape)
        f_right = self.pool.get("mmsolver.fr", f.shape)
        for j in range(g.cdim):
            axis = 1 + j
            sides = self._surf_stream_ops[j]
            pos = self._upwind_pos[j]
            neg = 1.0 - pos
            np.multiply(f, pos, out=f_left)
            _roll_mul(f, -1, axis, neg, out=f_right)
            sides[("L", "L")].apply(f_left, aux, out)
            sides[("L", "R")].apply(f_right, aux, out)
            buf = self.pool.get("mmsolver.surfbuf", out.shape)
            sides[("R", "L")].apply(f_left, aux, buf, accumulate=False)
            sides[("R", "R")].apply(f_right, aux, buf)
            _add_rolled(buf, 1, axis, out)
        for j in range(g.vdim):
            axis = 1 + g.cdim + j
            n = f.shape[axis]
            if n < 2:
                continue
            sides = self._surf_accel_ops[j]
            sl_lo = _axis_slice(f.ndim, axis, slice(0, n - 1))
            sl_hi = _axis_slice(f.ndim, axis, slice(1, n))
            face_cells = f[sl_lo].shape[1:]
            npb = self.num_basis
            cellmajor = all(
                sides[s].plan_fast(aux, face_cells).is_pure_cfg for s in "LR"
            )
            if not cellmajor:
                stacked = self.pool.get("mmsolver.astack", (2 * npb,) + face_cells)
                sides["L"].apply(f[sl_lo], aux, stacked, accumulate=False)
                sides["R"].apply(f[sl_hi], aux, stacked)
                out[sl_lo] += stacked[:npb]
                out[sl_hi] += stacked[npb:]
                continue
            cdim = g.cdim
            cfg_cells = face_cells[:cdim]
            ncfg = int(np.prod(cfg_cells)) if cfg_cells else 1
            nvel = int(np.prod(face_cells[cdim:]))
            outc = self.pool.get("mmsolver.aoutc", (ncfg, 2 * npb, nvel))
            sides["L"].apply_cellmajor(f[sl_lo], aux, outc, accumulate=False)
            sides["R"].apply_cellmajor(f[sl_hi], aux, outc)
            inc = np.moveaxis(
                outc.reshape(cfg_cells + (2 * npb,) + face_cells[cdim:]), cdim, 0
            )
            out[sl_lo] += inc[:npb]
            out[sl_hi] += inc[npb:]
        return out


class ModeMajorMoments:
    """PR 2 moment path: plan-cached kernels, pooled full-phase scratch,
    mode-major reduction over the trailing velocity axes."""

    def __init__(self, calc):
        g = calc.grid
        self.grid = g
        self.num_conf_basis = calc.num_conf_basis
        self.pool = ScratchPool()
        self._aux = g.base_aux()
        self._aux["vjac"] = float(np.prod([0.5 * dv for dv in g.vel.dx]))
        self._vel_axes = tuple(range(1 + g.cdim, 1 + g.pdim))
        self._ops = {
            name: ModeMajorGrouped(ts, g.cdim, g.vdim, pool=self.pool)
            for name, ts in calc.kernels.moments.items()
        }

    def compute(self, name, f, out=None):
        full = self.pool.get("mmmom.full", (self.num_conf_basis,) + self.grid.cells)
        self._ops[name].apply(f, self._aux, full, accumulate=False)
        return np.sum(full, axis=self._vel_axes, out=out)

    def current_density(self, f, charge, out=None):
        if out is None:
            out = np.zeros((3, self.num_conf_basis) + self.grid.conf.cells)
        elif self.grid.vdim < 3:
            out.fill(0.0)
        for d in range(self.grid.vdim):
            self.compute(f"M1{'xyz'[d]}", f, out=out[d])
            out[d] *= charge
        return out


class ModeMajorMaxwellRhs:
    """PR 2 Maxwell RHS: component-major state ``(8, Npc, *cfg)``, batched
    einsum volume/surface products with periodic rolls on trailing axes.
    (The solver now stores its matrices transposed for the cell-major
    right-multiplies; ``.T`` below recovers the original orientation.)"""

    def __init__(self, maxwell):
        self.mx = maxwell

    def __call__(self, q, current=None, out=None):
        mx = self.mx
        if out is None:
            out = np.zeros_like(q)
        else:
            out.fill(0.0)
        ndim = mx.grid.ndim
        for d in range(ndim):
            rdx = mx._rdx[d]
            g = np.zeros_like(q)
            for tgt, src, coeff in mx._flux_entries[d]:
                g[tgt] += coeff * q[src]
            out += rdx * np.einsum("lm,cm...->cl...", mx._deriv_t[d].T, g)
            axis = 2 + d
            g_left = 0.5 * g
            g_right = 0.5 * np.roll(g, -1, axis=axis)
            fm = mx._faces_t[d]
            inc_left = np.einsum("lm,cm...->cl...", fm[("L", "L")].T, g_left)
            inc_left += np.einsum("lm,cm...->cl...", fm[("L", "R")].T, g_right)
            inc_right = np.einsum("lm,cm...->cl...", fm[("R", "L")].T, g_left)
            inc_right += np.einsum("lm,cm...->cl...", fm[("R", "R")].T, g_right)
            out += rdx * inc_left
            out += rdx * np.roll(inc_right, 1, axis=axis)
        if current is not None:
            out[0:3] -= current / mx.epsilon0
        return out


class ModeMajorCoupledRhs:
    """The full PR 2 coupled RHS with donated mode-major output buffers."""

    def __init__(self, app):
        self.app = app
        self.species_rhs = {
            sp.name: ModeMajorSolverRhs(app.solvers[sp.name]) for sp in app.species
        }
        self.moments = {
            sp.name: ModeMajorMoments(app.moments[sp.name]) for sp in app.species
        }
        self.maxwell_rhs = ModeMajorMaxwellRhs(app.maxwell)
        self._current = None
        self._sp_current = None

    def __call__(self, state, out):
        """state/out are mode-major dicts (``f``: ``(Np, *cells)``, ``em``:
        ``(8, Npc, *cfg)``); ``out`` arrays are filled in place."""
        app = self.app
        em = state["em"]
        for sp in app.species:
            f = state[f"f/{sp.name}"]
            self.species_rhs[sp.name](f, em, out=out[f"f/{sp.name}"])
        if app.field_spec.evolve:
            shape = (3, app.cfg_basis.num_basis) + app.conf_grid.cells
            if self._current is None:
                self._current = np.zeros(shape)
                self._sp_current = np.empty(shape)
            cur = self._current
            cur.fill(0.0)
            for sp in app.species:
                cur += self.moments[sp.name].current_density(
                    state[f"f/{sp.name}"], sp.charge, out=self._sp_current
                )
            self.maxwell_rhs(em, current=cur, out=out["em"])
        else:
            out["em"].fill(0.0)
        return out
