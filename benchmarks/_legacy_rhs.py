"""Pre-refactor RHS reference for the hot-path benchmark.

This module preserves, verbatim in structure, the evaluation path the
precompiled-plan engine replaced: the original ``GroupedOperator`` (lazy
single plan, per-call temporaries, per-item coefficient assembly) and the
original solver RHS driver (sparse streaming path with fresh rolls/zeros
every call, per-side acceleration applications on copied face slices).  The
benchmark measures the engine against it in the same process so machine
drift cancels; the exactness check asserts both produce the same RHS.

Not imported by the library — benchmark-only code.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.kernels.termset import AuxValue, Symbol, TermSet


def _axis_slice(ndim: int, axis: int, sl: slice):
    out = [slice(None)] * ndim
    out[axis] = sl
    return tuple(out)


class LegacyGroupedOperator:
    """The seed's grouped evaluator: one lazily built plan, allocating
    temporaries on every application."""

    def __init__(self, termset: TermSet, cdim: int, vdim: int):
        self.termset = termset
        self.cdim = cdim
        self.vdim = vdim
        self.nout = termset.nout
        self.nin = termset.nin
        self._plan = None  # built lazily from the first aux dict

    def _classify(self, aux: Dict[str, AuxValue]):
        pdim = self.cdim + self.vdim
        groups: Dict[Symbol, List[Tuple[float, Optional[str], np.ndarray]]] = {}
        fallback: Dict[Symbol, list] = {}
        entries = self.termset.entries_by_symbol()
        for sym, triples in entries.items():
            scalar_names: List[str] = []
            cfg_names: List[str] = []
            vel_names: List[str] = []
            ok = True
            for name in sym:
                val = aux[name]
                if np.isscalar(val) or (isinstance(val, np.ndarray) and val.ndim == 0):
                    scalar_names.append(name)
                    continue
                arr = np.asarray(val)
                if arr.ndim != pdim:
                    ok = False
                    break
                varies_cfg = any(s > 1 for s in arr.shape[: self.cdim])
                varies_vel = any(s > 1 for s in arr.shape[self.cdim:])
                if varies_cfg and varies_vel:
                    ok = False
                    break
                if varies_cfg:
                    cfg_names.append(name)
                elif varies_vel:
                    vel_names.append(name)
                else:
                    scalar_names.append(name)
            if not ok or len(cfg_names) > 1:
                fallback[sym] = triples
                continue
            dense = np.zeros((self.nout, self.nin))
            for l, m, c in triples:
                dense[l, m] = c
            key = tuple(sorted(vel_names))
            groups.setdefault(key, []).append(
                (scalar_names, cfg_names[0] if cfg_names else None, dense)
            )
        plan = []
        for vel_key, items in groups.items():
            mats = np.stack([it[2] for it in items])
            plan.append((vel_key, items, mats.reshape(len(items), -1)))
        fallback_ts = (
            TermSet(self.nout, self.nin, fallback) if fallback else None
        )
        self._plan = (plan, fallback_ts)

    def apply(self, fin, aux, out):
        if self._plan is None:
            self._classify(aux)
        plan, fallback = self._plan
        cfg_shape = fin.shape[1: 1 + self.cdim]
        vel_shape = fin.shape[1 + self.cdim:]
        ncfg = int(np.prod(cfg_shape)) if cfg_shape else 1
        nvel = int(np.prod(vel_shape)) if vel_shape else 1

        f3 = fin.reshape(self.nin, ncfg, nvel)
        out3 = out.reshape(self.nout, ncfg, nvel)
        for vel_key, items, mats_flat in plan:
            if vel_key:
                velval = 1.0
                for name in vel_key:
                    velval = velval * aux[name]
                velval = np.broadcast_to(
                    velval, (1,) + cfg_shape + vel_shape
                ).reshape(1, ncfg, nvel)
                g = f3 * velval
            else:
                g = f3
            coef = np.empty((len(items), ncfg))
            for i, (scalar_names, cfg_name, _dense) in enumerate(items):
                c = 1.0
                for name in scalar_names:
                    c = c * float(aux[name])
                if cfg_name is None:
                    coef[i] = c
                else:
                    arr = np.broadcast_to(
                        aux[cfg_name], cfg_shape + (1,) * self.vdim
                    ).reshape(ncfg)
                    coef[i] = c * arr
            a = (coef.T @ mats_flat).reshape(ncfg, self.nout, self.nin)
            out3 += np.matmul(a, g.transpose(1, 0, 2)).transpose(1, 0, 2)
        if fallback is not None:
            fallback.apply(fin, aux, out)
        return out


class LegacyMoments:
    """The seed moment path: full phase-space zeros + sparse apply + reduce,
    allocated fresh on every call."""

    def __init__(self, calc):
        self.calc = calc

    def compute(self, name: str, f: np.ndarray) -> np.ndarray:
        calc = self.calc
        ts = calc.kernels.moments[name]
        full = np.zeros((calc.num_conf_basis,) + calc.grid.cells)
        ts.apply(f, calc._aux, full)
        return full.sum(axis=calc._vel_axes)

    def current_density(self, f: np.ndarray, charge: float) -> np.ndarray:
        out = np.zeros((3, self.calc.num_conf_basis) + self.calc.grid.conf.cells)
        for d in range(self.calc.grid.vdim):
            out[d] = charge * self.compute(f"M1{'xyz'[d]}", f)
        return out


class LegacyCoupledRhs:
    """The seed app's full coupled RHS (species + current coupling + Maxwell),
    allocating its stage outputs as the pre-refactor path did.  All state is
    **mode-major** (``f``: ``(Np, *cells)``, ``em``: ``(8, Npc, *cfg)``); the
    Maxwell update is the seed's einsum-over-trailing-axes form (preserved in
    :mod:`_modemajor_rhs` now that the library solver is cell-major)."""

    def __init__(self, app):
        from _modemajor_rhs import ModeMajorMaxwellRhs

        self.app = app
        self.species_rhs = {
            sp.name: LegacyRhs(app.solvers[sp.name]) for sp in app.species
        }
        self.moments = {
            sp.name: LegacyMoments(app.moments[sp.name]) for sp in app.species
        }
        self.maxwell_rhs = ModeMajorMaxwellRhs(app.maxwell)

    def __call__(self, state: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        app = self.app
        out: Dict[str, np.ndarray] = {}
        em = state["em"]
        for sp in app.species:
            f = state[f"f/{sp.name}"]
            out[f"f/{sp.name}"] = self.species_rhs[sp.name](f, em)
        if app.field_spec.evolve:
            current = np.zeros(
                (3, app.cfg_basis.num_basis) + app.conf_grid.cells
            )
            for sp in app.species:
                current += self.moments[sp.name].current_density(
                    state[f"f/{sp.name}"], sp.charge
                )
            out["em"] = self.maxwell_rhs(em, current=current)
        else:
            out["em"] = np.zeros_like(em)
        return out


class LegacyRhs:
    """The seed solver's RHS driver, bound to a current solver's kernels."""

    def __init__(self, solver):
        self.solver = solver
        self.grid = solver.grid
        cdim, vdim = self.grid.cdim, self.grid.vdim
        self._vol_accel_ops = [
            LegacyGroupedOperator(ts, cdim, vdim) for ts in solver.kernels.vol_accel
        ]
        self._surf_accel_ops = [
            {side: LegacyGroupedOperator(ts, cdim, vdim) for side, ts in sides.items()}
            for sides in solver.kernels.surf_accel
        ]

    def field_aux(self, em: np.ndarray) -> Dict[str, object]:
        """Fresh aux dict per call, as the seed built it."""
        solver = self.solver
        aux = dict(solver._base_aux)
        g = self.grid
        npc = solver.num_conf_basis
        for comp in range(3):
            for k in range(npc):
                aux[f"E{comp}_{k}"] = g.conf_coefficient_array(em[comp, k])
                aux[f"B{comp}_{k}"] = g.conf_coefficient_array(em[3 + comp, k])
        return aux

    def __call__(self, f: np.ndarray, em: np.ndarray, out=None) -> np.ndarray:
        solver = self.solver
        if out is None:
            out = np.zeros_like(f)
        else:
            out.fill(0.0)
        aux = self.field_aux(em)
        # volume
        for ts in solver.kernels.vol_stream:
            ts.apply(f, aux, out)
        for op in self._vol_accel_ops:
            op.apply(f, aux, out)
        # streaming surfaces
        for j in range(self.grid.cdim):
            axis = 1 + j
            sides = solver.kernels.surf_stream[j]
            pos = solver._upwind_pos[j]
            neg = 1.0 - pos
            f_left = f * pos
            f_right = np.roll(f, -1, axis=axis) * neg
            sides[("L", "L")].apply(f_left, aux, out)
            sides[("L", "R")].apply(f_right, aux, out)
            buf = np.zeros_like(out)
            sides[("R", "L")].apply(f_left, aux, buf)
            sides[("R", "R")].apply(f_right, aux, buf)
            out += np.roll(buf, 1, axis=axis)
        # acceleration surfaces
        half = 0.5
        for j in range(self.grid.vdim):
            axis = 1 + self.grid.cdim + j
            n = f.shape[axis]
            if n < 2:
                continue
            sides = self._surf_accel_ops[j]
            sl_lo = _axis_slice(f.ndim, axis, slice(0, n - 1))
            sl_hi = _axis_slice(f.ndim, axis, slice(1, n))
            f_left = np.ascontiguousarray(f[sl_lo]) * half
            f_right = np.ascontiguousarray(f[sl_hi]) * half
            inc_left = np.zeros_like(f_left)
            sides[("L", "L")].apply(f_left, aux, inc_left)
            sides[("L", "R")].apply(f_right, aux, inc_left)
            inc_right = np.zeros_like(f_left)
            sides[("R", "L")].apply(f_left, aux, inc_right)
            sides[("R", "R")].apply(f_right, aux, inc_right)
            out[sl_lo] += inc_left
            out[sl_hi] += inc_right
        return out
