"""Sec. III efficiency metric — E_op = DOFs / (cores * t_wall).

The paper updates ~1.67e7 DOFs/s/core for the forward-Euler spatial
discretization at p=2 Serendipity in 5D (2X3V), vs ~1e7 for the
state-of-the-art nodal CFD solver of Fehn et al. [12], and ~8e6 once the
Fokker–Planck (LBO) collision operator is added (footnote 7: collisions
roughly double the cost).

Here the same two measurements run on one CPython/NumPy core.  Absolute
numbers are far below compiled C++ (documented substitution); the *ratios*
the paper argues from — collisions ~2x the collisionless cost — are asserted.
"""

import time

import numpy as np
import pytest

from repro.collisions import LBOCollisions
from repro.grid import Grid, PhaseGrid
from repro.kernels import get_vlasov_kernels
from repro.moments import MomentCalculator
from repro.vlasov import VlasovModalSolver

POLY_ORDER = 2
FAMILY = "serendipity"


@pytest.fixture(scope="module")
def setup(rng):
    conf = Grid([0.0, 0.0], [1.0, 1.0], [3, 3])
    vel = Grid([-4.0] * 3, [4.0] * 3, [6, 6, 6])
    pg = PhaseGrid(conf, vel)
    solver = VlasovModalSolver(pg, POLY_ORDER, FAMILY)
    f = rng.standard_normal(conf.cells + (solver.num_basis,) + vel.cells)
    em = 0.1 * rng.standard_normal(conf.cells + (8, solver.num_conf_basis))
    return pg, solver, f, em


def _rate(fn, dofs, budget=1.5):
    fn()  # warm-up
    n, t0 = 0, time.perf_counter()
    while time.perf_counter() - t0 < budget:
        fn()
        n += 1
    return n * dofs / (time.perf_counter() - t0)


@pytest.mark.paper
def test_eop_collisionless_vs_collisional(benchmark, setup):
    pg, solver, f, em = setup
    out = np.zeros_like(f)
    dofs = f.size

    eop_vlasov = benchmark.pedantic(
        _rate, args=(lambda: solver.rhs(f, em, out), dofs), iterations=1, rounds=1
    )

    kern = get_vlasov_kernels(pg.cdim, pg.vdim, POLY_ORDER, FAMILY)
    mom = MomentCalculator(pg, kern)
    lbo = LBOCollisions(pg, POLY_ORDER, FAMILY, nu=1.0)
    # use a positive-density state for the weak division inside LBO
    f_pos = np.zeros_like(f)
    f_pos[0] = 1.0 + 0.01 * f[0]
    f_pos[1:] = 0.01 * f[1:]

    def full_update():
        solver.rhs(f_pos, em, out)
        lbo.rhs(f_pos, mom, out=out, accumulate=True)

    eop_full = _rate(full_update, dofs)
    slowdown = eop_vlasov / eop_full

    print("\n=== Sec. III: E_op = DOFs/(cores * t_wall), 2X3V p=2 (112 DOF) ===")
    print(f"collisionless Vlasov   : {eop_vlasov:,.0f} DOFs/s/core "
          "(paper: 1.67e7 on Xeon/C++)")
    print(f"with LBO Fokker-Planck : {eop_full:,.0f} DOFs/s/core "
          "(paper: ~8e6)")
    print(f"collision slowdown     : {slowdown:.2f}x (paper: ~2x)")
    assert 1.3 < slowdown < 4.0  # 'roughly doubles the cost'
    assert eop_vlasov > 1e5      # sanity: NumPy path is in a usable range


@pytest.mark.paper
def test_eop_vlasov_rhs(benchmark, setup):
    pg, solver, f, em = setup
    out = np.zeros_like(f)
    benchmark(solver.rhs, f, em, out)
