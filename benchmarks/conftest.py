"""Benchmark harness configuration.

Each ``bench_*.py`` file regenerates one table or figure of the paper
(see DESIGN.md's per-experiment index).  Benchmarks print the paper's
quantity next to the measured one; pytest-benchmark records the timings.
Run with:  pytest benchmarks/ --benchmark-only
"""

import numpy as np
import pytest


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(8675309)


def pytest_configure(config):
    config.addinivalue_line("markers", "paper: maps to a paper table/figure")
