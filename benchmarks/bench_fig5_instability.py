"""Fig. 5 — counter-streaming beam instability (2X2V), physics shape.

The paper's demonstration simulation: electron beams counter-streaming
through a neutralizing background drive two-stream/filamentation (oblique)
instabilities; the field energy grows exponentially at the kinetic rate,
saturates, and the plasma converts kinetic -> electromagnetic -> thermal
energy while the distribution develops the sheared phase-space structure
shown in the y-vy and vx-vy slices.

Full-resolution reproduction lives in ``examples/weibel_beams_2x2v.py``;
this benchmark runs a short reduced version and asserts the measurable
shape: (a) exponential growth within ~35% of linear theory, (b) positive
net kinetic->field conversion, (c) exact bookkeeping (energy drift at the
time-stepper level only), and records the time per step.
"""

import numpy as np
import pytest

from repro.diagnostics import fit_exponential_growth, plane_slice
from repro.linear import filamentation_growth_rate
from repro.runtime import Driver, build, build_app

DRIFT, VT = 0.6, 0.2
BOX = 4.0
KY = 2 * np.pi / BOX


def _make_spec(nx=4, nv=12, t_end=14.0):
    """The registry's Fig. 5 scenario at benchmark-reduced resolution."""
    return build(
        "weibel_2x2v", drift=DRIFT, vt=VT, box=BOX, nx=nx, nv=nv, t_end=t_end
    )


@pytest.fixture(scope="module")
def run_result():
    driver = Driver(_make_spec())
    summary = driver.run()
    return driver.app, driver.history, summary


@pytest.mark.paper
def test_fig5_growth_rate_vs_linear_theory(benchmark, run_result):
    app, hist, summary = run_result
    t = np.array(hist.times)
    e = np.array(hist.field_energy)
    fit = benchmark.pedantic(
        fit_exponential_growth, args=(t, e), kwargs=dict(t_min=4.0, t_max=12.0),
        iterations=1, rounds=1,
    )
    theory = filamentation_growth_rate(k=KY, drift=DRIFT, vt=VT)
    print("\n=== Fig. 5: counter-streaming beams (reduced 2X2V) ===")
    print(f"measured field growth rate : {fit.rate/2:.3f}")
    print(f"linear filamentation theory: {theory.imag:.3f}")
    print(f"steps: {summary['steps']}, {summary['wall_per_step']*1e3:.0f} ms/step")
    assert fit.rate / 2 == pytest.approx(theory.imag, rel=0.35)


@pytest.mark.paper
def test_fig5_energy_conversion_kinetic_to_field(benchmark, run_result):
    app, hist, _ = run_result
    e_field = benchmark.pedantic(
        lambda: np.array(hist.field_energy), iterations=1, rounds=1
    )
    e_part = np.array(hist.particle_energy["elc"])
    print(f"field energy : {e_field[0]:.3e} -> {e_field[-1]:.3e}")
    print(f"kinetic      : {e_part[0]:.6f} -> {e_part[-1]:.6f}")
    print(f"total drift  : {hist.relative_drift():.2e}")
    assert e_field[-1] > 100 * e_field[0]      # instability grew
    assert e_part[-1] < e_part[0]              # paid for by the beams
    assert hist.relative_drift() < 1e-4        # exact spatial bookkeeping


@pytest.mark.paper
def test_fig5_phase_space_structure(benchmark, run_result):
    """Filamentation imprints a y-periodic current/density modulation and
    velocity-space structure (the paper's y-vy and vx-vy slices); here the
    y-vy slice must develop y-dependence absent from the uniform IC."""
    app, _, _ = run_result
    from repro.basis.modal import ModalBasis

    pg = app.phase_grids["elc"]
    basis = ModalBasis(pg.pdim, app.poly_order, app.family)
    sl = benchmark.pedantic(
        plane_slice, args=(app.f["elc"], pg, basis),
        kwargs=dict(axes=(1, 3), fixed={}, resolution=32),
        iterations=1, rounds=1,
    )
    vals = sl["values"]  # f(y, vy)
    assert np.isfinite(vals).all()
    # y-modulation of the slice (zero initially up to projection noise)
    modulation = np.max(np.abs(vals - vals.mean(axis=0, keepdims=True)))
    print(f"y-modulation of f(y, vy): {modulation:.3e} "
          f"(peak f = {np.abs(vals).max():.3e})")
    assert modulation > 1e-6


@pytest.mark.paper
def test_fig5_step_cost(benchmark):
    app = build_app(_make_spec(nx=4, nv=10))
    dt = app.suggested_dt()
    benchmark.pedantic(app.step, args=(dt,), iterations=1, rounds=3)
