"""Fig. 1 — the generated computational kernel and its multiplication count.

The paper shows the CAS-generated C++ volume kernel for the 1X2V p=1 tensor
basis and quotes ~70 multiplications for the modal volume update vs ~250 for
the alias-free nodal quadrature equivalent (a ratio of ~3.5x).  Here we
emit the same kernel (Python form), count multiplications exactly, and time
one evaluation over a block of cells.
"""

import numpy as np
import pytest

from repro.cas.codegen import compile_kernel, count_multiplications, emit_kernel_source
from repro.grid import Grid, PhaseGrid
from repro.kernels import get_vlasov_kernels
from repro.kernels.flops import (
    alias_free_quadrature_points_1d,
    modal_update_multiplications,
    nodal_update_multiplications,
)


@pytest.fixture(scope="module")
def bundle():
    return get_vlasov_kernels(1, 2, 1, "tensor")


def test_fig1_volume_kernel_mult_counts(benchmark, bundle):
    """Modal volume kernel mults ~O(100), nodal quadrature several-fold more."""
    modal = benchmark.pedantic(
        modal_update_multiplications, args=(bundle,), iterations=1, rounds=1
    )
    nodal = nodal_update_multiplications(bundle.num_basis, 1, 2, 1)
    ratio = nodal["volume_total"] / modal["volume_total"]
    print("\n=== Fig. 1: 1X2V p=1 tensor volume kernel ===")
    print(f"paper: modal ~70 multiplications, nodal ~250 (ratio ~3.5x)")
    print(f"ours : modal {modal['volume_total']} multiplications, "
          f"nodal {nodal['volume_total']} (ratio {ratio:.1f}x)")
    assert 30 <= modal["volume_total"] <= 300   # same order as the paper's ~70
    assert ratio > 3.0                          # nodal several-fold costlier


def test_fig1_kernel_is_matrix_free(benchmark, bundle):
    src = benchmark.pedantic(
        emit_kernel_source, args=("vol", bundle.vol_stream[0]),
        iterations=1, rounds=1,
    )
    assert "for " not in src and "dot" not in src
    # every coefficient baked in at double precision, like the paper's C++
    assert any(ch.isdigit() for ch in src)


def test_fig1_kernel_eval(benchmark, bundle, rng):
    """Time the generated (unrolled-source) kernel over a cell block."""
    pg = PhaseGrid(Grid([0.0], [1.0], [8]), Grid([-2, -2], [2, 2], [8, 8]))
    aux = pg.base_aux()
    aux["qm"] = -1.0
    f = rng.standard_normal((bundle.num_basis,) + pg.cells)
    out = np.zeros_like(f)
    kern = compile_kernel("k", bundle.vol_stream[0])
    benchmark(kern, f, aux, out)


def test_fig1_sparse_operator_eval(benchmark, bundle, rng):
    """Time the equivalent sparse-operator path (the production path)."""
    pg = PhaseGrid(Grid([0.0], [1.0], [8]), Grid([-2, -2], [2, 2], [8, 8]))
    aux = pg.base_aux()
    aux["qm"] = -1.0
    f = rng.standard_normal((bundle.num_basis,) + pg.cells)
    out = np.zeros_like(f)
    benchmark(bundle.vol_stream[0].apply, f, aux, out)
