"""Legacy setup shim: lets ``pip install -e .`` work offline (no wheel pkg)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Alias-free, matrix-free, quadrature-free modal DG algorithms for "
        "(plasma) kinetic equations — reproduction of Hakim & Juno, SC 2020"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.23", "scipy>=1.9"],
    entry_points={"console_scripts": ["repro = repro.runtime.cli:main"]},
)
